#include "src/rt/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/rt/event_graph.hpp"

namespace gpup::rt {

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo: return "fifo";
    case SchedulerPolicy::kPriority: return "priority";
    case SchedulerPolicy::kFairShare: return "fair_share";
  }
  return "?";
}

std::uint64_t schedule_key(std::uint64_t seed, std::uint64_t seq) {
  if (seed == 0) return seq;
  // splitmix64 finalizer over seq ^ seed: bijective, so distinct commands
  // keep distinct keys and the induced order is a seeded permutation.
  std::uint64_t z = seq ^ seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

using Node = std::shared_ptr<detail::EventState>;

/// Global submission order (perturbed by the seed).
class FifoScheduler final : public Scheduler {
 public:
  explicit FifoScheduler(const SchedulerConfig& config) : seed_(config.seed) {}

  void push(Node node) override { nodes_.push_back(std::move(node)); }

  Node pop() override {
    if (nodes_.empty()) return nullptr;
    auto best = nodes_.begin();
    for (auto it = std::next(best); it != nodes_.end(); ++it) {
      if (schedule_key(seed_, (*it)->tag.seq) < schedule_key(seed_, (*best)->tag.seq)) {
        best = it;
      }
    }
    return take(best);
  }

  [[nodiscard]] bool empty() const override { return nodes_.empty(); }
  [[nodiscard]] const char* name() const override { return "fifo"; }

 protected:
  Node take(std::vector<Node>::iterator it) {
    Node node = std::move(*it);
    *it = std::move(nodes_.back());
    nodes_.pop_back();
    return node;
  }

  std::uint64_t seed_;
  // The ready set is small (bounded by queues in flight), so an O(n) scan
  // per pop stays cheap and keeps the policies trivially deterministic —
  // no heap whose layout could depend on interleaving.
  std::vector<Node> nodes_;
};

/// Highest effective priority first, where a command waiting in the ready
/// set gains one level every `aging_period` pops: effective(cmd) =
/// queue priority + age / aging_period. The age is counted in scheduler
/// decisions, not wall time, so the promotion schedule is deterministic.
class PriorityScheduler final : public Scheduler {
 public:
  explicit PriorityScheduler(const SchedulerConfig& config)
      : seed_(config.seed), aging_period_(std::max<std::uint32_t>(1, config.aging_period)) {}

  void push(Node node) override { nodes_.push_back({std::move(node), pops_}); }

  Node pop() override {
    if (nodes_.empty()) return nullptr;
    auto best = nodes_.begin();
    for (auto it = std::next(best); it != nodes_.end(); ++it) {
      if (before(*it, *best)) best = it;
    }
    ++pops_;
    Node node = std::move(best->node);
    *best = std::move(nodes_.back());
    nodes_.pop_back();
    return node;
  }

  [[nodiscard]] bool empty() const override { return nodes_.empty(); }
  [[nodiscard]] const char* name() const override { return "priority"; }

 private:
  struct Entry {
    Node node;
    std::uint64_t enqueue_pop = 0;  ///< pops_ value when it became ready
  };

  [[nodiscard]] std::int64_t effective(const Entry& entry) const {
    const std::uint64_t age = pops_ - entry.enqueue_pop;
    return static_cast<std::int64_t>(entry.node->tag.priority) +
           static_cast<std::int64_t>(age / aging_period_);
  }

  [[nodiscard]] bool before(const Entry& a, const Entry& b) const {
    const std::int64_t ea = effective(a);
    const std::int64_t eb = effective(b);
    if (ea != eb) return ea > eb;
    return schedule_key(seed_, a.node->tag.seq) < schedule_key(seed_, b.node->tag.seq);
  }

  std::uint64_t seed_;
  std::uint64_t aging_period_;
  std::uint64_t pops_ = 0;
  std::vector<Entry> nodes_;
};

/// Deficit round-robin over tenants: tenants are visited in id order by a
/// rotating cursor; arriving at a tenant grants its queue `quantum` budget
/// units, and the tenant's oldest command runs once the accumulated
/// deficit covers its cost. A tenant that drains its queue forfeits its
/// remaining deficit (classic DRR — no banking while idle), so service is
/// proportional to quantum regardless of burstiness.
class FairShareScheduler final : public Scheduler {
 public:
  explicit FairShareScheduler(const SchedulerConfig& config)
      : seed_(config.seed),
        quantum_(config.drr_quantum > 0 ? config.drr_quantum : 1.0),
        min_cost_(std::max(0.0, config.min_command_cost)) {}

  void push(Node node) override {
    const std::uint64_t tenant = node->tag.tenant;
    auto [it, inserted] = tenants_.try_emplace(tenant);
    // Keep each tenant's backlog in submission-key order (deterministic
    // within the tenant even when readiness order varies).
    auto& backlog = it->second.backlog;
    const std::uint64_t key = schedule_key(seed_, node->tag.seq);
    auto pos = backlog.begin();
    while (pos != backlog.end() && schedule_key(seed_, (*pos)->tag.seq) < key) ++pos;
    backlog.insert(pos, std::move(node));
    ++size_;
  }

  Node pop() override {
    if (size_ == 0) return nullptr;
    while (true) {
      // One round from the cursor: serve the first tenant whose deficit
      // covers its head command; a needy tenant we pass is granted one
      // quantum, an idle one forfeits its deficit (no banking).
      auto it = tenants_.lower_bound(cursor_);
      for (std::size_t hops = 0; hops < tenants_.size(); ++hops) {
        if (it == tenants_.end()) it = tenants_.begin();
        auto& tenant = it->second;
        if (tenant.backlog.empty()) {
          tenant.deficit = 0.0;
        } else if (tenant.deficit >= charge(tenant.backlog.front())) {
          tenant.deficit -= charge(tenant.backlog.front());
          Node node = std::move(tenant.backlog.front());
          tenant.backlog.pop_front();
          if (tenant.backlog.empty()) tenant.deficit = 0.0;
          --size_;
          cursor_ = it->first;  // keep serving this tenant while deficit lasts
          return node;
        } else {
          tenant.deficit += quantum_;
        }
        ++it;
      }
      // A full fruitless round: every active tenant still needs more
      // quanta. Grant the shared shortfall in one arithmetic step — the
      // exact equivalent of that many single-quantum rounds — so an
      // expensive head (cost = work-groups of a big launch) costs O(1)
      // rounds instead of O(cost / quantum) map walks under the
      // scheduler mutex. The next round then serves the winner at its
      // correct cursor position.
      double min_rounds = 0.0;
      bool first = true;
      for (auto& [id, tenant] : tenants_) {
        if (tenant.backlog.empty()) continue;
        const double rounds =
            std::ceil((charge(tenant.backlog.front()) - tenant.deficit) / quantum_);
        if (first || rounds < min_rounds) min_rounds = rounds;
        first = false;
      }
      if (first) return nullptr;  // defensive: size_ said otherwise
      if (min_rounds > 1.0) {
        const double grant = (min_rounds - 1.0) * quantum_;
        for (auto& [id, tenant] : tenants_) {
          if (!tenant.backlog.empty()) tenant.deficit += grant;
        }
      }
    }
  }

  [[nodiscard]] bool empty() const override { return size_ == 0; }
  [[nodiscard]] const char* name() const override { return "fair_share"; }

 private:
  struct Tenant {
    std::deque<Node> backlog;
    double deficit = 0.0;
  };

  /// What serving this command debits: never below the configured minimum,
  /// so zero-cost commands (transfers, native work) still pay their way
  /// through the round-robin instead of being served unconditionally.
  [[nodiscard]] double charge(const Node& node) const {
    return std::max(node->tag.cost, min_cost_);
  }

  std::uint64_t seed_;
  double quantum_;
  double min_cost_;
  std::uint64_t cursor_ = 0;  ///< next tenant id to visit
  std::size_t size_ = 0;
  std::map<std::uint64_t, Tenant> tenants_;  ///< ordered: deterministic visit order
};

}  // namespace

std::unique_ptr<Scheduler> Scheduler::create(const SchedulerConfig& config) {
  switch (config.policy) {
    case SchedulerPolicy::kFifo: return std::make_unique<FifoScheduler>(config);
    case SchedulerPolicy::kPriority: return std::make_unique<PriorityScheduler>(config);
    case SchedulerPolicy::kFairShare: return std::make_unique<FairShareScheduler>(config);
  }
  return std::make_unique<FifoScheduler>(config);
}

// ---- AdmissionController --------------------------------------------------

Status AdmissionController::try_admit(std::uint64_t tenant) {
  if (!config_.enabled()) return {};
  util::MutexLock lock(m_);
  auto& state = tenants_[tenant];
  if (config_.max_pending_per_tenant > 0 && state.pending >= config_.max_pending_per_tenant) {
    ++rejected_;
    return Error{"tenant " + std::to_string(tenant) + " has " + std::to_string(state.pending) +
                     " commands pending (limit " +
                     std::to_string(config_.max_pending_per_tenant) + ")",
                 "rt.admission", ErrorCode::kRejected};
  }
  if (config_.tokens_per_second > 0.0) {
    // gpup-lint: allow(wall-clock) admission rate limiting is deliberately host-time based
    const auto now = std::chrono::steady_clock::now();
    if (!state.primed) {
      state.primed = true;
      state.tokens = config_.burst;
    } else {
      const double elapsed = std::chrono::duration<double>(now - state.last_refill).count();
      state.tokens = std::min(config_.burst, state.tokens + elapsed * config_.tokens_per_second);
    }
    state.last_refill = now;
    if (state.tokens < 1.0) {
      ++rejected_;
      return Error{"tenant " + std::to_string(tenant) + " exceeded " +
                       std::to_string(config_.tokens_per_second) + " submissions/s",
                   "rt.admission", ErrorCode::kRejected};
    }
    state.tokens -= 1.0;
  }
  ++state.pending;
  return {};
}

void AdmissionController::settle(std::uint64_t tenant) {
  if (!config_.enabled()) return;
  util::MutexLock lock(m_);
  auto it = tenants_.find(tenant);
  GPUP_CHECK_MSG(it != tenants_.end() && it->second.pending > 0,
                 "admission settle without a matching admit");
  --it->second.pending;
}

std::uint32_t AdmissionController::pending(std::uint64_t tenant) const {
  util::MutexLock lock(m_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.pending;
}

std::uint64_t AdmissionController::total_pending() const {
  util::MutexLock lock(m_);
  std::uint64_t total = 0;
  // gpup-lint: allow(unordered-iter) order-independent sum of the pending gauges
  for (const auto& [tenant, state] : tenants_) total += state.pending;
  return total;
}

std::uint64_t AdmissionController::rejected() const {
  util::MutexLock lock(m_);
  return rejected_;
}

}  // namespace gpup::rt
