#include "src/rt/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/rt/event_graph.hpp"

namespace gpup::rt {

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo: return "fifo";
    case SchedulerPolicy::kPriority: return "priority";
    case SchedulerPolicy::kFairShare: return "fair_share";
  }
  return "?";
}

std::uint64_t schedule_key(std::uint64_t seed, std::uint64_t seq) {
  if (seed == 0) return seq;
  // splitmix64 finalizer over seq ^ seed: bijective, so distinct commands
  // keep distinct keys and the induced order is a seeded permutation.
  std::uint64_t z = seq ^ seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

using Node = std::shared_ptr<detail::EventState>;

/// Global submission order (perturbed by the seed).
class FifoScheduler final : public Scheduler {
 public:
  explicit FifoScheduler(const SchedulerConfig& config) : seed_(config.seed) {}

  void push(Node node) override {
    // The key is a pure function of (seed, seq): computing it once here
    // keeps the selection scans below at one integer compare per entry —
    // with a batch-deep ready set the scan runs once per pop AND once per
    // batch-assembly candidate, so its inner loop is the scheduler's
    // hottest code.
    const std::uint64_t key = schedule_key(seed_, node->tag.seq);
    nodes_.push_back({std::move(node), key});
  }

  Node pop() override {
    const auto best = select();
    if (best == nodes_.end()) return nullptr;
    return take(best);
  }

  [[nodiscard]] Node peek() const override {
    const auto best = select();
    return best == nodes_.end() ? nullptr : best->node;
  }

  Node pop_if(const std::function<bool(const detail::EventState&)>& accept,
              bool* rejected) override {
    *rejected = false;
    const auto best = select();
    if (best == nodes_.end()) return nullptr;
    if (!accept(*best->node)) {
      *rejected = true;
      return nullptr;
    }
    return take(best);
  }

  [[nodiscard]] bool empty() const override { return nodes_.empty(); }
  [[nodiscard]] const char* name() const override { return "fifo"; }

 private:
  struct Entry {
    Node node;
    std::uint64_t key = 0;  ///< schedule_key(seed, seq), cached at push
  };

  [[nodiscard]] std::vector<Entry>::iterator select() {
    auto best = nodes_.begin();
    for (auto it = best; it != nodes_.end(); ++it) {
      if (it->key < best->key) best = it;
    }
    return best;
  }
  [[nodiscard]] std::vector<Entry>::const_iterator select() const {
    auto best = nodes_.begin();
    for (auto it = best; it != nodes_.end(); ++it) {
      if (it->key < best->key) best = it;
    }
    return best;
  }

  Node take(std::vector<Entry>::iterator it) {
    Node node = std::move(it->node);
    *it = std::move(nodes_.back());
    nodes_.pop_back();
    return node;
  }

  std::uint64_t seed_;
  // The ready set is bounded by commands in flight, so an O(n) scan per
  // pop stays cheap and keeps the policies trivially deterministic — no
  // heap whose layout could depend on interleaving.
  std::vector<Entry> nodes_;
};

/// Highest effective priority first, where a command waiting in the ready
/// set gains one level every `aging_period` pops: effective(cmd) =
/// queue priority + age / aging_period. The age is counted in scheduler
/// decisions, not wall time, so the promotion schedule is deterministic.
class PriorityScheduler final : public Scheduler {
 public:
  explicit PriorityScheduler(const SchedulerConfig& config)
      : seed_(config.seed), aging_period_(std::max<std::uint32_t>(1, config.aging_period)) {}

  void push(Node node) override {
    // Cache the tie-break key and materialize the aging schedule as
    // (level, promote_at): the entry sits at `level` until the pop counter
    // reaches `promote_at`, then gains one level per further aging period.
    // effective(entry) = priority + age / aging_period exactly as before,
    // but the selection scan pays one compare instead of a division per
    // entry — with a batch-deep ready set that scan runs once per pop and
    // once per batch-assembly candidate, so it dominates scheduler cost.
    const std::int64_t level = node->tag.priority;
    const std::uint64_t key = schedule_key(seed_, node->tag.seq);
    nodes_.push_back({std::move(node), level, pops_ + aging_period_, key});
  }

  Node pop() override {
    const auto best = select();
    if (best == nodes_.end()) return nullptr;
    ++pops_;
    Node node = std::move(best->node);
    *best = std::move(nodes_.back());
    nodes_.pop_back();
    return node;
  }

  [[nodiscard]] Node peek() const override {
    // Identical scan to pop(): aging advances AFTER pop's selection, so
    // the effective priorities the peek sees are exactly what the next
    // pop will evaluate. Promotion rewrites entries into an equivalent
    // representation without changing any effective priority, which is
    // why a const peek may apply it.
    const auto best = select();
    return best == nodes_.end() ? nullptr : best->node;
  }

  Node pop_if(const std::function<bool(const detail::EventState&)>& accept,
              bool* rejected) override {
    *rejected = false;
    const auto best = select();
    if (best == nodes_.end()) return nullptr;
    if (!accept(*best->node)) {
      *rejected = true;
      return nullptr;
    }
    ++pops_;
    Node node = std::move(best->node);
    *best = std::move(nodes_.back());
    nodes_.pop_back();
    return node;
  }

  [[nodiscard]] bool empty() const override { return nodes_.empty(); }
  [[nodiscard]] const char* name() const override { return "priority"; }

 private:
  struct Entry {
    Node node;
    std::int64_t level = 0;         ///< current effective priority
    std::uint64_t promote_at = 0;   ///< pops_ value of the next level gain
    std::uint64_t key = 0;          ///< schedule_key(seed, seq), cached
  };

  /// Apply any promotions the entry has earned since it was last looked
  /// at. Amortized O(1): each entry promotes at most once per aging
  /// period, and the common scan case is a single predicted-false branch.
  void maybe_promote(Entry& entry) const {
    if (pops_ >= entry.promote_at) {
      const std::uint64_t steps = 1 + (pops_ - entry.promote_at) / aging_period_;
      entry.level += static_cast<std::int64_t>(steps);
      entry.promote_at += steps * aging_period_;
    }
  }

  [[nodiscard]] std::vector<Entry>::iterator select() const {
    auto best = nodes_.begin();
    for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
      maybe_promote(*it);
      if (it == best) continue;
      if (it->level != best->level ? it->level > best->level : it->key < best->key) {
        best = it;
      }
    }
    return best;
  }

  std::uint64_t seed_;
  std::uint64_t aging_period_;
  std::uint64_t pops_ = 0;
  // mutable: peek()'s scan normalizes (level, promote_at) pairs in place;
  // observable effective priorities never change (see maybe_promote).
  mutable std::vector<Entry> nodes_;
};

/// Deficit round-robin over tenants: tenants are visited in id order by a
/// rotating cursor; arriving at a tenant grants its queue `quantum` budget
/// units, and the tenant's oldest command runs once the accumulated
/// deficit covers its cost. A tenant that drains its queue forfeits its
/// remaining deficit (classic DRR — no banking while idle), so service is
/// proportional to quantum regardless of burstiness.
class FairShareScheduler final : public Scheduler {
 public:
  explicit FairShareScheduler(const SchedulerConfig& config)
      : seed_(config.seed),
        quantum_(config.drr_quantum > 0 ? config.drr_quantum : 1.0),
        min_cost_(std::max(0.0, config.min_command_cost)) {}

  void push(Node node) override {
    const std::uint64_t tenant = node->tag.tenant;
    auto [it, inserted] = tenants_.try_emplace(tenant);
    // Keep each tenant's backlog in submission-key order (deterministic
    // within the tenant even when readiness order varies).
    auto& backlog = it->second.backlog;
    const std::uint64_t key = schedule_key(seed_, node->tag.seq);
    auto pos = backlog.begin();
    while (pos != backlog.end() && schedule_key(seed_, (*pos)->tag.seq) < key) ++pos;
    backlog.insert(pos, std::move(node));
    ++size_;
  }

  Node pop() override {
    if (size_ == 0) return nullptr;
    while (true) {
      // One round from the cursor: serve the first tenant whose deficit
      // covers its head command; a needy tenant we pass is granted one
      // quantum, an idle one forfeits its deficit (no banking).
      auto it = tenants_.lower_bound(cursor_);
      for (std::size_t hops = 0; hops < tenants_.size(); ++hops) {
        if (it == tenants_.end()) it = tenants_.begin();
        auto& tenant = it->second;
        if (tenant.backlog.empty()) {
          tenant.deficit = 0.0;
        } else if (tenant.deficit >= charge(tenant.backlog.front())) {
          tenant.deficit -= charge(tenant.backlog.front());
          Node node = std::move(tenant.backlog.front());
          tenant.backlog.pop_front();
          if (tenant.backlog.empty()) tenant.deficit = 0.0;
          --size_;
          cursor_ = it->first;  // keep serving this tenant while deficit lasts
          return node;
        } else {
          tenant.deficit += quantum_;
        }
        ++it;
      }
      // A full fruitless round: every active tenant still needs more
      // quanta. Grant the shared shortfall in one arithmetic step — the
      // exact equivalent of that many single-quantum rounds — so an
      // expensive head (cost = work-groups of a big launch) costs O(1)
      // rounds instead of O(cost / quantum) map walks under the
      // scheduler mutex. The next round then serves the winner at its
      // correct cursor position.
      double min_rounds = 0.0;
      bool first = true;
      for (auto& [id, tenant] : tenants_) {
        if (tenant.backlog.empty()) continue;
        const double rounds =
            std::ceil((charge(tenant.backlog.front()) - tenant.deficit) / quantum_);
        if (first || rounds < min_rounds) min_rounds = rounds;
        first = false;
      }
      if (first) return nullptr;  // defensive: size_ said otherwise
      if (min_rounds > 1.0) {
        const double grant = (min_rounds - 1.0) * quantum_;
        for (auto& [id, tenant] : tenants_) {
          if (!tenant.backlog.empty()) tenant.deficit += grant;
        }
      }
    }
  }

  [[nodiscard]] Node peek() const override {
    if (size_ == 0) return nullptr;
    // Simulate pop() on copied per-tenant state: the same cursor walk,
    // idle-deficit forfeit, per-visit quantum grant and fruitless-round
    // bulk grant — but against scratch deficits, so neither the cursor
    // nor any tenant's real deficit moves. The eventual pop then replays
    // the identical walk on the real state and must return this node
    // (the batch assembler asserts it).
    struct Sim {
      double deficit = 0.0;
      const Node* head = nullptr;  ///< null = idle tenant
    };
    std::map<std::uint64_t, Sim> sims;
    for (const auto& [id, tenant] : tenants_) {
      sims.emplace(id, Sim{tenant.deficit,
                           tenant.backlog.empty() ? nullptr : &tenant.backlog.front()});
    }
    while (true) {
      auto it = sims.lower_bound(cursor_);
      for (std::size_t hops = 0; hops < sims.size(); ++hops) {
        if (it == sims.end()) it = sims.begin();
        auto& tenant = it->second;
        if (tenant.head == nullptr) {
          tenant.deficit = 0.0;
        } else if (tenant.deficit >= charge(*tenant.head)) {
          return *tenant.head;
        } else {
          tenant.deficit += quantum_;
        }
        ++it;
      }
      double min_rounds = 0.0;
      bool first = true;
      for (const auto& [id, tenant] : sims) {
        if (tenant.head == nullptr) continue;
        const double rounds = std::ceil((charge(*tenant.head) - tenant.deficit) / quantum_);
        if (first || rounds < min_rounds) min_rounds = rounds;
        first = false;
      }
      if (first) return nullptr;  // defensive: size_ said otherwise
      if (min_rounds > 1.0) {
        const double grant = (min_rounds - 1.0) * quantum_;
        for (auto& [id, tenant] : sims) {
          if (tenant.head != nullptr) tenant.deficit += grant;
        }
      }
    }
  }

  [[nodiscard]] bool empty() const override { return size_ == 0; }
  [[nodiscard]] const char* name() const override { return "fair_share"; }

 private:
  struct Tenant {
    std::deque<Node> backlog;
    double deficit = 0.0;
  };

  /// What serving this command debits: never below the configured minimum,
  /// so zero-cost commands (transfers, native work) still pay their way
  /// through the round-robin instead of being served unconditionally.
  [[nodiscard]] double charge(const Node& node) const {
    return std::max(node->tag.cost, min_cost_);
  }

  std::uint64_t seed_;
  double quantum_;
  double min_cost_;
  std::uint64_t cursor_ = 0;  ///< next tenant id to visit
  std::size_t size_ = 0;
  std::map<std::uint64_t, Tenant> tenants_;  ///< ordered: deterministic visit order
};

}  // namespace

std::shared_ptr<detail::EventState> Scheduler::pop_if(
    const std::function<bool(const detail::EventState&)>& accept, bool* rejected) {
  // Generic fallback: peek, test, then pop and check the policy kept its
  // word. kFairShare uses this (its peek simulates the DRR walk, so a
  // single-scan variant would buy nothing); the O(n)-scan policies
  // override it with a true single scan.
  *rejected = false;
  auto next = peek();
  if (next == nullptr) return nullptr;
  if (!accept(*next)) {
    *rejected = true;
    return nullptr;
  }
  auto popped = pop();
  GPUP_CHECK_MSG(popped == next, "scheduler peek/pop disagreement");
  return popped;
}

std::unique_ptr<Scheduler> Scheduler::create(const SchedulerConfig& config) {
  switch (config.policy) {
    case SchedulerPolicy::kFifo: return std::make_unique<FifoScheduler>(config);
    case SchedulerPolicy::kPriority: return std::make_unique<PriorityScheduler>(config);
    case SchedulerPolicy::kFairShare: return std::make_unique<FairShareScheduler>(config);
  }
  return std::make_unique<FifoScheduler>(config);
}

// ---- AdmissionController --------------------------------------------------

Status AdmissionController::try_admit(std::uint64_t tenant) {
  if (!config_.enabled()) return {};
  util::MutexLock lock(m_);
  auto& state = tenants_[tenant];
  if (config_.max_pending_per_tenant > 0 && state.pending >= config_.max_pending_per_tenant) {
    ++rejected_;
    return Error{"tenant " + std::to_string(tenant) + " has " + std::to_string(state.pending) +
                     " commands pending (limit " +
                     std::to_string(config_.max_pending_per_tenant) + ")",
                 "rt.admission", ErrorCode::kRejected};
  }
  if (config_.tokens_per_second > 0.0) {
    // gpup-lint: allow(wall-clock) admission rate limiting is deliberately host-time based
    const auto now = std::chrono::steady_clock::now();
    if (!state.primed) {
      state.primed = true;
      state.tokens = config_.burst;
    } else {
      const double elapsed = std::chrono::duration<double>(now - state.last_refill).count();
      state.tokens = std::min(config_.burst, state.tokens + elapsed * config_.tokens_per_second);
    }
    state.last_refill = now;
    if (state.tokens < 1.0) {
      ++rejected_;
      return Error{"tenant " + std::to_string(tenant) + " exceeded " +
                       std::to_string(config_.tokens_per_second) + " submissions/s",
                   "rt.admission", ErrorCode::kRejected};
    }
    state.tokens -= 1.0;
  }
  ++state.pending;
  return {};
}

void AdmissionController::settle(std::uint64_t tenant) {
  if (!config_.enabled()) return;
  util::MutexLock lock(m_);
  auto it = tenants_.find(tenant);
  GPUP_CHECK_MSG(it != tenants_.end() && it->second.pending > 0,
                 "admission settle without a matching admit");
  --it->second.pending;
}

std::uint32_t AdmissionController::pending(std::uint64_t tenant) const {
  util::MutexLock lock(m_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.pending;
}

std::uint64_t AdmissionController::total_pending() const {
  util::MutexLock lock(m_);
  std::uint64_t total = 0;
  // gpup-lint: allow(unordered-iter) order-independent sum of the pending gauges
  for (const auto& [tenant, state] : tenants_) total += state.pending;
  return total;
}

std::uint64_t AdmissionController::rejected() const {
  util::MutexLock lock(m_);
  return rejected_;
}

}  // namespace gpup::rt
