#include "src/rt/event_graph.hpp"

namespace gpup::rt {

const char* to_string(EventStatus status) {
  switch (status) {
    case EventStatus::kQueued: return "queued";
    case EventStatus::kRunning: return "running";
    case EventStatus::kComplete: return "complete";
    case EventStatus::kFailed: return "failed";
    case EventStatus::kCancelled: return "cancelled";
  }
  return "?";
}

const char* to_string(QueueMode mode) {
  switch (mode) {
    case QueueMode::kInOrder: return "in-order";
    case QueueMode::kOutOfOrder: return "out-of-order";
  }
  return "?";
}

util::Mutex& graph_mutex() {
  static util::Mutex mutex;
  return mutex;
}

void EventGraph::link(const std::shared_ptr<detail::EventState>& node,
                      const std::shared_ptr<detail::EventState>& dep) {
  if (!dep) return;
  if (dep->settled) {
    if (dep->failed && !node->dep_failed) {
      node->dep_failed = true;
      node->dep_error = dep->failure;
    }
  } else {
    dep->dependents.push_back(node);
    ++node->deps_remaining;
  }
}

void EventGraph::attach_to_queue(const std::shared_ptr<detail::EventState>& node,
                                 const std::shared_ptr<detail::QueueState>& queue) {
  node->queue = queue;
  node->queue_slot = queue->unsettled.size();
  queue->unsettled.push_back(node);
  if (queue->mode == QueueMode::kInOrder) queue->last = node;
}

std::vector<std::shared_ptr<detail::EventState>> EventGraph::settle(
    const std::shared_ptr<detail::EventState>& node, const Status& result) {
  std::vector<std::shared_ptr<detail::EventState>> ready;
  util::MutexLock lock(graph_mutex());
  node->settled = true;
  node->failed = !result.ok();
  if (node->failed) node->failure = result.error();

  if (node->queue) {
    auto& queue = *node->queue;
    if (node->failed) queue.any_failed = true;
    // Swap-remove from the unsettled set; fix the moved node's back-index.
    auto& unsettled = queue.unsettled;
    const std::size_t slot = node->queue_slot;
    unsettled[slot] = std::move(unsettled.back());
    unsettled[slot]->queue_slot = slot;
    unsettled.pop_back();
    // `last` deliberately keeps pointing at a settled tail: an in-order
    // queue whose tail failed must poison commands submitted later, and
    // link() reads the failure off the settled node.
    node->queue = nullptr;
  }

  for (auto& dependent : node->dependents) {
    // A dependent can already be settled: Event::cancel() settles a node
    // while its dependencies are still pending. It must not be routed to a
    // scheduler (it is dead), and its counters no longer matter.
    if (dependent->settled) continue;
    if (node->failed && !dependent->dep_failed) {
      dependent->dep_failed = true;
      dependent->dep_error = node->failure;
    }
    if (--dependent->deps_remaining == 0) ready.push_back(std::move(dependent));
  }
  node->dependents.clear();
  return ready;
}

}  // namespace gpup::rt
