// Dependency-graph layer of the host runtime.
//
// Tracks command readiness independent of queue order: every enqueued
// command is a node, edges come from the owning queue's mode (in-order
// queues chain each command behind the previous one; out-of-order queues
// add no implicit edges) plus the explicit wait-list. A node becomes
// *ready* when its last unsettled dependency settles; the EventGraph hands
// ready nodes back to the caller, which routes each to its owning
// Context's Scheduler (scheduler.hpp) — the graph decides *which* commands
// can run, never *when* or *where*.
//
// Failure semantics: when a node settles failed, the failure is recorded
// on every dependent at the moment it becomes ready, and a dependent that
// saw any failed dependency executes as an immediate dependency error
// instead of running its body. Failures therefore cascade through the
// transitive closure — and only through it, so in out-of-order mode
// commands with no path from the failed node are untouched.
//
// The graph is process-global (one mutex), because wait-lists may cross
// Context instances; it is tiny and touched only for microseconds per
// command.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/rt/scheduler.hpp"
#include "src/sim/gpu.hpp"
#include "src/util/annotated_mutex.hpp"
#include "src/util/status.hpp"

namespace gpup::rt {

/// The process-wide graph lock. A free function (function-local static in
/// the .cpp) rather than an EventGraph static member so that the
/// GPUP_GUARDED_BY annotations on detail::EventState / detail::QueueState —
/// declared before EventGraph below — can name it.
[[nodiscard]] util::Mutex& graph_mutex();

enum class EventStatus { kQueued, kRunning, kComplete, kFailed, kCancelled };

[[nodiscard]] const char* to_string(EventStatus status);

/// Terminal states: the event will never change again and waiters may
/// return. kCancelled is terminal like kFailed; the two differ only in
/// who pulled the trigger (host vs. command body), and both poison
/// dependents the same way.
[[nodiscard]] inline bool is_terminal(EventStatus status) {
  return status == EventStatus::kComplete || status == EventStatus::kFailed ||
         status == EventStatus::kCancelled;
}

/// In-order queues chain every command behind the previous one (the
/// OpenCL default); out-of-order queues order commands by explicit
/// wait-lists only, so independent commands of one queue run concurrently
/// and a failure poisons exactly its transitive dependents.
enum class QueueMode { kInOrder, kOutOfOrder };

[[nodiscard]] const char* to_string(QueueMode mode);

class Context;

namespace detail {

struct QueueState;
struct KernelWork;  // runtime.hpp: batchable-kernel description

struct EventState {
  // ---- result, guarded by `m` -----------------------------------------
  mutable util::Mutex m;
  mutable util::CondVar cv;
  EventStatus status GPUP_GUARDED_BY(m) = EventStatus::kQueued;
  bool settle_claimed GPUP_GUARDED_BY(m) = false;  ///< one settle wins (user events race complete/fail)
  Error error GPUP_GUARDED_BY(m);
  // `stats` and `data` are deliberately NOT guarded by `m`: the command
  // body writes them while the worker owns the running command (no other
  // thread touches them before the terminal status is published under
  // `m`), and readers (Event::stats/data) wait for a terminal status
  // first, after which the fields are frozen.
  sim::LaunchStats stats;
  std::vector<std::uint32_t> data;

  // ---- command body (worker-only once scheduled) -----------------------
  Context* context = nullptr;  ///< null for user events (never scheduled)
  std::function<Status(EventState&)> run;

  // ---- scheduling metadata (immutable after submit) --------------------
  CommandTag tag;
  /// Kernel commands only: everything the batching layer needs to decide
  /// whether this command can fuse with others (program identity, buffer
  /// footprint, knobs resolved from its queue) and to run its segment.
  /// Null for transfers, natives and user events — those never batch.
  std::shared_ptr<const KernelWork> kernel;

  // ---- device-load reservation (immutable after submit) ----------------
  // Kernel commands reserve their predicted cycles on their device's load
  // gauge at dispatch; settle_and_route releases exactly this amount on
  // ANY terminal path (complete, failed, cancelled, dependency-failed), so
  // the gauge cannot leak. -1 = nothing reserved (transfers, native, user
  // events).
  int pool_device = -1;
  std::uint64_t pool_reserved = 0;
  /// Admission control charged one pending slot for this command; settle
  /// releases it on every terminal path, mirroring the load gauge.
  bool admission_charged = false;

  // ---- graph state, guarded by graph_mutex() ---------------------------
  int deps_remaining GPUP_GUARDED_BY(graph_mutex()) = 0;
  bool settled GPUP_GUARDED_BY(graph_mutex()) = false;  ///< terminal, as seen by the graph
  bool failed GPUP_GUARDED_BY(graph_mutex()) = false;
  Error failure GPUP_GUARDED_BY(graph_mutex());  ///< copy handed to dependents
  bool dep_failed GPUP_GUARDED_BY(graph_mutex()) = false;
  Error dep_error GPUP_GUARDED_BY(graph_mutex());
  std::vector<std::shared_ptr<EventState>> dependents GPUP_GUARDED_BY(graph_mutex());
  /// Owning queue (null: user event).
  std::shared_ptr<QueueState> queue GPUP_GUARDED_BY(graph_mutex());
  /// Index in queue->unsettled.
  std::size_t queue_slot GPUP_GUARDED_BY(graph_mutex()) = 0;
};

struct QueueState {
  int id = 0;
  int device = 0;
  QueueMode mode = QueueMode::kInOrder;
  int priority = 0;
  std::uint64_t tenant = 0;
  /// Default per-command deadline in simulated cycles (0 = none); a
  /// per-enqueue LaunchOptions deadline overrides it.
  std::uint64_t deadline_cycles = 0;

  // Continuous-batching knobs, resolved once at queue registration from
  // QueueOptions::batch (kAuto inherits the context's BatchConfig; see
  // runtime.hpp BatchConfig). Immutable after registration.
  bool batch_enabled = false;
  std::uint32_t batch_max_launches = 0;
  std::uint64_t batch_max_wait_cycles = 0;
  double batch_small_launch_cycles = 0.0;

  // `last` is the in-order chain tail; `unsettled` holds every
  // non-terminal command of the queue (both modes) so finish() can wait
  // on all of them — an out-of-order queue has no single tail that covers
  // its history.
  std::shared_ptr<EventState> last GPUP_GUARDED_BY(graph_mutex());
  std::vector<std::shared_ptr<EventState>> unsettled GPUP_GUARDED_BY(graph_mutex());
  /// Sticky: some command of this queue failed.
  bool any_failed GPUP_GUARDED_BY(graph_mutex()) = false;
};

}  // namespace detail

/// The readiness layer. All methods lock (or require, via GPUP_REQUIRES)
/// the process-wide graph_mutex(); see the file comment for the model.
class EventGraph {
 public:
  /// Add the edge dep -> node (no-op for null dep). A settled failed dep
  /// marks the node dep_failed instead of adding an edge; an unsettled
  /// dep increments deps_remaining. Callers hold the lock because linking
  /// a node and reading its queue's tail must be one atomic step.
  static void link(const std::shared_ptr<detail::EventState>& node,
                   const std::shared_ptr<detail::EventState>& dep)
      GPUP_REQUIRES(graph_mutex());

  /// Register the node with its owning queue (chain tail + unsettled set).
  static void attach_to_queue(const std::shared_ptr<detail::EventState>& node,
                              const std::shared_ptr<detail::QueueState>& queue)
      GPUP_REQUIRES(graph_mutex());

  /// Settle the node (locks graph_mutex() itself): record the outcome, detach
  /// from the owning queue, propagate failure to dependents, and return
  /// every dependent whose last dependency this was — the caller routes
  /// them to their contexts' schedulers.
  [[nodiscard]] static std::vector<std::shared_ptr<detail::EventState>> settle(
      const std::shared_ptr<detail::EventState>& node, const Status& result);
};

}  // namespace gpup::rt
