#include "src/rt/runtime.hpp"

#include <utility>

#include "src/util/strings.hpp"

namespace gpup::rt {

const char* to_string(EventStatus status) {
  switch (status) {
    case EventStatus::kQueued: return "queued";
    case EventStatus::kRunning: return "running";
    case EventStatus::kComplete: return "complete";
    case EventStatus::kFailed: return "failed";
  }
  return "?";
}

namespace detail {

// The command graph (dependency edges, settled flags, queue tails) is tiny
// and touched only for microseconds per command, so one process-wide lock
// keeps it simple and makes wait-lists across Context instances safe.
std::mutex& graph_mutex() {
  static std::mutex mutex;
  return mutex;
}

struct EventState {
  // ---- result, guarded by `m` -----------------------------------------
  mutable std::mutex m;
  mutable std::condition_variable cv;
  EventStatus status = EventStatus::kQueued;
  Error error;
  sim::LaunchStats stats;
  std::vector<std::uint32_t> data;

  // ---- command body (worker-only once dispatched) ----------------------
  Context* context = nullptr;
  std::function<Status(EventState&)> run;

  // ---- scheduling, guarded by graph_mutex() ---------------------------
  int deps_remaining = 0;
  bool settled = false;       ///< terminal, as seen by the graph
  bool failed = false;
  Error failure;              ///< copy handed to dependents
  bool dep_failed = false;
  Error dep_error;
  std::vector<std::shared_ptr<EventState>> dependents;
};

struct QueueState {
  int device = 0;
  std::shared_ptr<EventState> last;  ///< queue tail, guarded by graph_mutex()
};

}  // namespace detail

// ---- Event ----------------------------------------------------------------

EventStatus Event::status() const {
  if (!state_) return EventStatus::kFailed;
  std::lock_guard<std::mutex> lock(state_->m);
  return state_->status;
}

bool Event::wait() const {
  if (!state_) return false;
  std::unique_lock<std::mutex> lock(state_->m);
  state_->cv.wait(lock, [this] {
    return state_->status == EventStatus::kComplete || state_->status == EventStatus::kFailed;
  });
  return state_->status == EventStatus::kComplete;
}

Error Event::error() const {
  if (!state_) return Error{"null event", "rt"};
  wait();
  std::lock_guard<std::mutex> lock(state_->m);
  return state_->status == EventStatus::kFailed ? state_->error : Error{};
}

const sim::LaunchStats& Event::stats() const {
  static const sim::LaunchStats empty;
  if (!state_) return empty;
  wait();
  return state_->stats;  // terminal: no further writes
}

const std::vector<std::uint32_t>& Event::data() const {
  static const std::vector<std::uint32_t> empty;
  if (!state_) return empty;
  wait();
  return state_->data;  // terminal: no further writes
}

// ---- Context --------------------------------------------------------------

Context::Context(const sim::GpuConfig& config, int device_count, unsigned threads)
    : config_(config), pool_(threads) {
  GPUP_CHECK_MSG(device_count >= 1, "context needs at least one device");
  // One token per pool worker: a worker holds its token while executing a
  // command, so intra-launch tick gangs can only borrow workers that are
  // actually idle (see GpuConfig::concurrency_budget).
  if (!config_.concurrency_budget) {
    config_.concurrency_budget = std::make_shared<ConcurrencyBudget>(pool_.size());
  }
  budget_ = config_.concurrency_budget;
  devices_.reserve(static_cast<std::size_t>(device_count));
  for (int i = 0; i < device_count; ++i) {
    devices_.push_back(std::make_unique<DeviceSlot>(config_));
  }
}

// Wait for every command of this context to settle before tearing down
// the pool: same-context chains would drain through the ThreadPool
// destructor anyway (each finalize() dispatches its dependents before its
// worker goes back to the queue), but a command still waiting on another
// context's event has not reached our pool yet — finish() blocks until
// that foreign dependency settles and hands the command to our (still
// alive) workers.
Context::~Context() { (void)finish(); }

CommandQueue Context::create_queue() {
  std::lock_guard<std::mutex> lock(queues_mutex_);
  const int device = next_queue_device_;
  next_queue_device_ = (next_queue_device_ + 1) % device_count();
  auto state = std::make_shared<detail::QueueState>();
  state->device = device;
  queues_.push_back(state);
  return CommandQueue(this, std::move(state));
}

CommandQueue Context::create_queue(int device) {
  GPUP_CHECK_MSG(device >= 0 && device < device_count(), "device index out of range");
  std::lock_guard<std::mutex> lock(queues_mutex_);
  auto state = std::make_shared<detail::QueueState>();
  state->device = device;
  queues_.push_back(state);
  return CommandQueue(this, std::move(state));
}

bool Context::finish() {
  std::vector<std::shared_ptr<detail::EventState>> tails;
  {
    std::lock_guard<std::mutex> queues_lock(queues_mutex_);
    std::lock_guard<std::mutex> graph_lock(detail::graph_mutex());
    for (const auto& queue : queues_) {
      if (queue->last) tails.push_back(queue->last);
    }
  }
  bool ok = true;
  for (const auto& tail : tails) ok = Event(tail).wait() && ok;
  return ok;
}

Event Context::submit(const std::shared_ptr<detail::QueueState>& queue,
                      std::function<Status(detail::EventState&)> run,
                      const std::vector<Event>& wait_list) {
  auto state = std::make_shared<detail::EventState>();
  state->context = this;
  state->run = std::move(run);

  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(detail::graph_mutex());
    const auto link = [&state](const std::shared_ptr<detail::EventState>& dep) {
      if (!dep) return;
      if (dep->settled) {
        if (dep->failed && !state->dep_failed) {
          state->dep_failed = true;
          state->dep_error = dep->failure;
        }
      } else {
        dep->dependents.push_back(state);
        ++state->deps_remaining;
      }
    };
    link(queue->last);  // in-order: chain behind the queue tail (null = head)
    for (const auto& event : wait_list) {
      // A null Event reports kFailed, so depending on one fails too —
      // silently skipping it would run the command without its intended
      // ordering.
      if (!event.state_ && !state->dep_failed) {
        state->dep_failed = true;
        state->dep_error = Error{"null event in wait list", "rt"};
      }
      link(event.state_);
    }
    queue->last = state;
    ready = state->deps_remaining == 0;
  }
  if (ready) dispatch(state);
  return Event(state);
}

void Context::dispatch(std::shared_ptr<detail::EventState> state) {
  pool_.submit([this, state = std::move(state)] { execute(state); });
}

void Context::execute(const std::shared_ptr<detail::EventState>& state) {
  Status result;
  // dep_failed/dep_error were last written under the graph mutex before
  // the final deps_remaining decrement that dispatched us: safe to read.
  if (state->dep_failed) {
    result = Error{"dependency failed: " + state->dep_error.to_string(), "rt"};
  } else {
    {
      std::lock_guard<std::mutex> lock(state->m);
      state->status = EventStatus::kRunning;
    }
    // Hold one budget token while the command runs, so launches on other
    // workers only borrow genuinely idle capacity for their tick gangs.
    const unsigned token = budget_->try_acquire(1);
    try {
      result = state->run(*state);
    } catch (const std::exception& e) {
      result = Error{e.what(), "rt"};
    }
    budget_->release(token);
  }
  state->run = nullptr;  // drop captured buffers/programs promptly
  finalize(state, std::move(result));
}

void Context::finalize(const std::shared_ptr<detail::EventState>& state, Status result) {
  {
    std::lock_guard<std::mutex> lock(state->m);
    state->status = result.ok() ? EventStatus::kComplete : EventStatus::kFailed;
    if (!result.ok()) state->error = result.error();
  }
  state->cv.notify_all();

  std::vector<std::shared_ptr<detail::EventState>> ready;
  {
    std::lock_guard<std::mutex> lock(detail::graph_mutex());
    state->settled = true;
    state->failed = !result.ok();
    if (state->failed) state->failure = result.error();
    for (auto& dependent : state->dependents) {
      if (state->failed && !dependent->dep_failed) {
        dependent->dep_failed = true;
        dependent->dep_error = state->failure;
      }
      if (--dependent->deps_remaining == 0) ready.push_back(std::move(dependent));
    }
    state->dependents.clear();
  }
  // Dispatch each dependent onto its OWN context's pool (wait-lists may
  // cross Context instances; an event must never run on a foreign pool,
  // whose drain would not cover it).
  for (auto& next : ready) {
    Context* owner = next->context;
    owner->dispatch(std::move(next));
  }
}

// ---- CommandQueue ---------------------------------------------------------

int CommandQueue::device_index() const {
  GPUP_CHECK_MSG(valid(), "null command queue");
  return state_->device;
}

Result<Buffer> CommandQueue::alloc(std::uint32_t bytes) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  auto& slot = *context_->devices_[static_cast<std::size_t>(state_->device)];
  std::lock_guard<std::mutex> lock(slot.alloc_mutex);
  auto addr = slot.gpu.try_alloc(bytes);
  if (!addr.ok()) return addr.error();
  return Buffer{addr.value(), bytes, state_->device};
}

Event CommandQueue::enqueue_write(const Buffer& buffer, std::vector<std::uint32_t> words,
                                  const std::vector<Event>& wait_list) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  auto& slot = *context_->devices_[static_cast<std::size_t>(state_->device)];
  const int device = state_->device;
  return context_->submit(
      state_,
      [&slot, device, buffer, words = std::move(words)](detail::EventState&) -> Status {
        if (buffer.device != device) {
          return Error{format("buffer lives on device %d, queue is bound to device %d",
                              buffer.device, device),
                       "rt.write"};
        }
        if (words.size() * 4 > buffer.bytes) {
          return Error{format("write of %zu words overflows %u-byte buffer", words.size(),
                              buffer.bytes),
                       "rt.write"};
        }
        std::lock_guard<std::mutex> lock(slot.exec_mutex);
        return slot.gpu.try_write(buffer.addr, words);
      },
      wait_list);
}

Event CommandQueue::enqueue_kernel(const isa::Program& program,
                                   std::vector<std::uint32_t> args, const NdRange& range,
                                   const std::vector<Event>& wait_list) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  auto& slot = *context_->devices_[static_cast<std::size_t>(state_->device)];
  return context_->submit(
      state_,
      [&slot, program, args = std::move(args), range](detail::EventState& state) -> Status {
        std::lock_guard<std::mutex> lock(slot.exec_mutex);
        auto stats = slot.gpu.try_launch(program, args, range.global_size, range.wg_size);
        if (!stats.ok()) return stats.error();
        state.stats = std::move(stats).value();
        return {};
      },
      wait_list);
}

Event CommandQueue::enqueue_read(const Buffer& buffer, const std::vector<Event>& wait_list) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  auto& slot = *context_->devices_[static_cast<std::size_t>(state_->device)];
  const int device = state_->device;
  return context_->submit(
      state_,
      [&slot, device, buffer](detail::EventState& state) -> Status {
        if (buffer.device != device) {
          return Error{format("buffer lives on device %d, queue is bound to device %d",
                              buffer.device, device),
                       "rt.read"};
        }
        state.data.resize(buffer.words());
        std::lock_guard<std::mutex> lock(slot.exec_mutex);
        auto status = slot.gpu.try_read(buffer.addr, state.data);
        if (!status.ok()) state.data.clear();
        return status;
      },
      wait_list);
}

bool CommandQueue::finish() {
  GPUP_CHECK_MSG(valid(), "null command queue");
  std::shared_ptr<detail::EventState> tail;
  {
    std::lock_guard<std::mutex> lock(detail::graph_mutex());
    tail = state_->last;
  }
  // In-order queue: the tail settling implies every earlier command
  // settled, and any earlier failure cascades into the tail.
  return tail == nullptr || Event(std::move(tail)).wait();
}

}  // namespace gpup::rt
