#include "src/rt/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/strings.hpp"


namespace gpup::rt {

// ---- Event ----------------------------------------------------------------

const char* to_string(WaitResult result) {
  switch (result) {
    case WaitResult::kComplete: return "complete";
    case WaitResult::kFailed: return "failed";
    case WaitResult::kCancelled: return "cancelled";
    case WaitResult::kTimedOut: return "timed_out";
  }
  return "?";
}

EventStatus Event::status() const {
  if (!state_) return EventStatus::kFailed;
  util::MutexLock lock(state_->m);
  return state_->status;
}

bool Event::wait() const {
  if (!state_) return false;
  util::MutexLock lock(state_->m);
  while (!is_terminal(state_->status)) state_->cv.wait(state_->m);
  return state_->status == EventStatus::kComplete;
}

WaitResult Event::wait_for(std::chrono::nanoseconds timeout) const {
  if (!state_) return WaitResult::kFailed;
  // Host wall-clock by definition: this bounds how long the CALLER
  // blocks, and never feeds any simulated result.
  // gpup-lint: allow(wall-clock) wait_for bounds host blocking time, not simulated time
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::MutexLock lock(state_->m);
  while (!is_terminal(state_->status)) {
    if (state_->cv.wait_until(state_->m, deadline) == std::cv_status::timeout &&
        !is_terminal(state_->status)) {
      return WaitResult::kTimedOut;
    }
  }
  switch (state_->status) {
    case EventStatus::kComplete: return WaitResult::kComplete;
    case EventStatus::kCancelled: return WaitResult::kCancelled;
    default: return WaitResult::kFailed;
  }
}

bool Event::cancel() const {
  if (!state_) return false;
  {
    // One critical section for the check AND the claim: a worker that
    // pops the command re-checks settle_claimed under the same mutex
    // before transitioning to kRunning, so exactly one of {cancel, run}
    // wins and a command can never run after a successful cancel.
    util::MutexLock lock(state_->m);
    if (state_->status != EventStatus::kQueued || state_->settle_claimed) return false;
    state_->settle_claimed = true;
  }
  Context::finish_settle(
      state_, Status{Error{"cancelled by host", "rt.cancel", ErrorCode::kCancelled}});
  return true;
}

Error Event::error() const {
  if (!state_) return Error{"null event", "rt"};
  wait();
  util::MutexLock lock(state_->m);
  return state_->status == EventStatus::kFailed || state_->status == EventStatus::kCancelled
             ? state_->error
             : Error{};
}

const sim::LaunchStats& Event::stats() const {
  static const sim::LaunchStats empty;
  if (!state_) return empty;
  wait();
  return state_->stats;  // terminal: no further writes
}

const std::vector<std::uint32_t>& Event::data() const {
  static const std::vector<std::uint32_t> empty;
  if (!state_) return empty;
  wait();
  return state_->data;  // terminal: no further writes
}

// ---- UserEvent ------------------------------------------------------------

void UserEvent::complete() {
  GPUP_CHECK_MSG(valid(), "null user event");
  Context::settle_and_route(state_, Status{});
}

void UserEvent::fail(Error error) {
  GPUP_CHECK_MSG(valid(), "null user event");
  Context::settle_and_route(state_, Status{std::move(error)});
}

// ---- Context --------------------------------------------------------------

namespace {

std::vector<sim::GpuConfig> replicate(const sim::GpuConfig& config, int device_count) {
  GPUP_CHECK_MSG(device_count >= 1, "context needs at least one device");
  return std::vector<sim::GpuConfig>(static_cast<std::size_t>(device_count), config);
}

/// Shared budget installation: one token per pool worker — a worker holds
/// its token while executing a command, so intra-launch tick gangs can
/// only borrow workers that are actually idle (see
/// GpuConfig::concurrency_budget). Caller-supplied budgets are kept.
std::vector<sim::GpuConfig> with_budget(std::vector<sim::GpuConfig> configs,
                                        const std::shared_ptr<ConcurrencyBudget>& budget) {
  for (auto& config : configs) {
    if (!config.concurrency_budget) config.concurrency_budget = budget;
  }
  return configs;
}

unsigned resolve_threads(unsigned threads) {
  return threads == 0 ? ThreadPool::default_threads() : threads;
}

/// The budget the context's own workers draw from. A caller-supplied
/// budget (first device config carrying one) is adopted, so an executing
/// command holds a token from the SAME pool its launch's tick gang leases
/// from — e.g. the repro sweep's one budget across all cells. Otherwise a
/// fresh budget sized to the worker pool.
std::shared_ptr<ConcurrencyBudget> pick_budget(const std::vector<sim::GpuConfig>& configs,
                                               unsigned threads) {
  for (const auto& config : configs) {
    if (config.concurrency_budget) return config.concurrency_budget;
  }
  return std::make_shared<ConcurrencyBudget>(resolve_threads(threads));
}

}  // namespace

Context::Context(const sim::GpuConfig& config, int device_count, unsigned threads)
    : Context([&] {
        ContextOptions options;
        options.devices = replicate(config, device_count);
        options.threads = threads;
        return options;
      }()) {}

Context::Context(ContextOptions options)
    : sched_config_(options.scheduler),
      budget_(pick_budget(options.devices, options.threads)),
      cost_model_(options.cost_model != nullptr ? std::move(options.cost_model)
                                                : std::make_shared<sim::CostModel>()),
      fault_plan_(std::move(options.fault_plan)),
      devices_(with_budget(options.devices.empty()
                               ? std::vector<sim::GpuConfig>{sim::GpuConfig{}}
                               : std::move(options.devices),
                           budget_),
               options.placement, options.health),
      admission_(options.admission),
      batch_config_(options.batch),
      scheduler_(Scheduler::create(sched_config_)) {
  const unsigned threads = resolve_threads(options.threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

// Wait for every command of this context to settle before stopping the
// workers: same-context chains would drain through the stop protocol
// anyway (workers keep popping until the scheduler is empty), but a
// command still waiting on another context's event has not reached our
// scheduler yet — finish() blocks until that foreign dependency settles
// and hands the command to our (still alive) workers.
Context::~Context() {
  (void)finish();
  {
    util::MutexLock lock(sched_mutex_);
    stopping_ = true;
  }
  sched_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

// Queue registration shared by every create_queue overload; expects
// queues_mutex_ held and a validated device index.
CommandQueue Context::register_queue(int device, const QueueOptions& options) {
  auto state = std::make_shared<detail::QueueState>();
  state->id = next_queue_id_++;
  state->device = device;
  state->mode = options.mode;
  state->priority = options.priority;
  state->tenant = options.tenant;
  state->deadline_cycles = options.deadline_cycles;
  // Resolve the continuous-batching knobs once: kAuto inherits the
  // context's BatchConfig wholesale, an explicit mode makes this queue's
  // own knobs authoritative. A still-kAuto resolved mode means "on under
  // kFifo / kFairShare" — the policies whose pop order the batch
  // assembler's consecutive-picks rule provably preserves; kPriority
  // queues must opt in explicitly (BatchConfig::on()).
  const BatchConfig batch =
      options.batch.mode == BatchMode::kAuto ? batch_config_ : options.batch;
  const bool auto_on = sched_config_.policy == SchedulerPolicy::kFifo ||
                       sched_config_.policy == SchedulerPolicy::kFairShare;
  state->batch_enabled =
      batch.mode == BatchMode::kOn || (batch.mode == BatchMode::kAuto && auto_on);
  state->batch_max_launches = batch.max_launches;
  state->batch_max_wait_cycles = batch.max_wait_cycles;
  state->batch_small_launch_cycles = batch.small_launch_cycles;
  devices_.bind(device);
  queues_.push_back(state);
  return CommandQueue(this, std::move(state));
}

CommandQueue Context::create_queue() {
  util::MutexLock lock(queues_mutex_);
  const int device = next_queue_device_;
  next_queue_device_ = (next_queue_device_ + 1) % device_count();
  return register_queue(device, QueueOptions{});
}

CommandQueue Context::create_queue(int device) {
  GPUP_CHECK_MSG(device >= 0 && device < device_count(), "device index out of range");
  util::MutexLock lock(queues_mutex_);
  return register_queue(device, QueueOptions{});
}

// A queue is dead once only the Context's own registry references it (no
// outside CommandQueue handle, no unsettled command holding the state) —
// enqueuing requires a handle, so a dead queue can never grow again. Its
// device binding is released so placement stops avoiding devices whose
// queues are long gone; a dead queue that had failed keeps failing
// finish() through pruned_failed_.
void Context::prune_dead_queues_locked() {
  std::erase_if(queues_, [this](const std::shared_ptr<detail::QueueState>& queue) {
    if (queue.use_count() > 1 || !queue->unsettled.empty()) return false;
    devices_.unbind(queue->device);
    pruned_failed_ = pruned_failed_ || queue->any_failed;
    return true;
  });
}

Result<CommandQueue> Context::create_queue(const QueueOptions& options) {
  util::MutexLock lock(queues_mutex_);
  int device = options.device;
  if (device < 0) {
    {
      // Placement reads the binding gauge: release dead queues first so a
      // long-lived context's create/destroy churn cannot skew it.
      util::MutexLock graph_lock(graph_mutex());
      prune_dead_queues_locked();
    }
    // With a workload hint, score every device by the cost model's
    // prediction for the hinted launches on THAT device's config.
    std::vector<double> predicted;
    if (!options.hint.program.empty() && options.hint.range.global_size > 0) {
      const auto profile = cost_model_->profile_for(options.hint.program);
      predicted.resize(static_cast<std::size_t>(device_count()));
      for (int i = 0; i < device_count(); ++i) {
        predicted[static_cast<std::size_t>(i)] =
            cost_model_->predict(profile, devices_.config(i), options.hint.range.global_size,
                                 options.hint.range.wg_size) *
            std::max(1, options.hint.launches);
      }
    }
    auto placed = devices_.place(options.require, predicted);
    if (!placed.ok()) return placed.error();
    device = placed.value();
  } else if (device >= device_count()) {
    return Error{format("device index %d out of range (pool has %d)", device, device_count()),
                 "rt.queue"};
  }
  return register_queue(device, options);
}

UserEvent Context::create_user_event() {
  // User events never run: no context, no queue, settled by the caller.
  return UserEvent(std::make_shared<detail::EventState>());
}

bool Context::finish() {
  std::vector<std::shared_ptr<detail::EventState>> pending;
  {
    util::MutexLock queues_lock(queues_mutex_);
    util::MutexLock graph_lock(graph_mutex());
    for (const auto& queue : queues_) {
      pending.insert(pending.end(), queue->unsettled.begin(), queue->unsettled.end());
    }
  }
  for (const auto& state : pending) (void)Event(state).wait();
  util::MutexLock queues_lock(queues_mutex_);
  util::MutexLock graph_lock(graph_mutex());
  prune_dead_queues_locked();
  bool ok = !pruned_failed_;
  for (const auto& queue : queues_) ok = ok && !queue->any_failed;
  return ok;
}

/// A detached, pre-failed event: terminal from birth and NEVER attached
/// to the event graph, so it does not enter the owning queue's history —
/// an admission-rejected command is *shed*, not failed: it must not
/// poison an in-order queue's later commands or flip finish() to false.
/// (Depending on one via a wait-list still fails the dependent, exactly
/// like depending on any failed event.)
Event Context::make_detached_failed(Error error) {
  auto state = std::make_shared<detail::EventState>();
  state->status = error.code == ErrorCode::kCancelled ? EventStatus::kCancelled
                                                      : EventStatus::kFailed;
  state->error = error;
  state->settle_claimed = true;
  state->settled = true;
  state->failed = true;
  state->failure = std::move(error);
  return Event(std::move(state));
}

Context::Gauges Context::snapshot() {
  Gauges gauges;
  for (int i = 0; i < device_count(); ++i) {
    gauges.inflight_cycles += devices_.inflight_cycles(i);
    gauges.affinity_cache_entries += devices_.cache_entries(i);
    gauges.devices_quarantined += devices_.quarantined(i) ? 1 : 0;
  }
  gauges.admission_pending = admission_.total_pending();
  gauges.shed_total = admission_.rejected();
  gauges.retries_total = retries_total_.load(std::memory_order_relaxed);
  gauges.deadline_misses_total = deadline_misses_total_.load(std::memory_order_relaxed);
  gauges.batches_inflight = batches_inflight_.load(std::memory_order_relaxed);
  gauges.batches_formed_total = batches_formed_total_.load(std::memory_order_relaxed);
  gauges.launches_batched_total = launches_batched_total_.load(std::memory_order_relaxed);
  gauges.batch_close_drained_total =
      batch_close_drained_total_.load(std::memory_order_relaxed);
  gauges.batch_close_incompatible_total =
      batch_close_incompatible_total_.load(std::memory_order_relaxed);
  gauges.batch_close_unamortized_total =
      batch_close_unamortized_total_.load(std::memory_order_relaxed);
  gauges.batch_close_size_cap_total =
      batch_close_size_cap_total_.load(std::memory_order_relaxed);
  gauges.batch_close_cycle_cap_total =
      batch_close_cycle_cap_total_.load(std::memory_order_relaxed);
  util::MutexLock queues_lock(queues_mutex_);
  util::MutexLock graph_lock(graph_mutex());
  gauges.live_queues = static_cast<int>(queues_.size());
  for (const auto& queue : queues_) {
    gauges.unsettled_commands += queue->unsettled.size();
  }
  return gauges;
}

Event Context::submit(const std::shared_ptr<detail::QueueState>& queue,
                      std::function<Status(detail::EventState&)> run,
                      const std::vector<Event>& wait_list, double cost,
                      int reserve_device, std::uint64_t reserved_cycles,
                      std::shared_ptr<const detail::KernelWork> kernel) {
  // Admission control runs before the command touches the graph or the
  // policy: an over-limit submission is rejected right here in O(1),
  // without blocking and without aborting anything already accepted.
  Status admitted = admission_.try_admit(queue->tenant);
  if (!admitted.ok()) {
    if (reserve_device >= 0) devices_.settle_load(reserve_device, reserved_cycles);
    return make_detached_failed(admitted.error());
  }
  auto state = std::make_shared<detail::EventState>();
  state->admission_charged = admission_.config().enabled();
  state->context = this;
  state->run = std::move(run);
  state->tag.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  state->tag.queue_id = queue->id;
  state->tag.priority = queue->priority;
  state->tag.tenant = queue->tenant;
  state->tag.cost = cost;
  state->pool_device = reserve_device;
  state->pool_reserved = reserved_cycles;
  state->kernel = std::move(kernel);

  bool ready = false;
  {
    util::MutexLock lock(graph_mutex());
    // In-order queues chain behind the tail; out-of-order queues order by
    // wait-lists only.
    if (queue->mode == QueueMode::kInOrder) EventGraph::link(state, queue->last);
    for (const auto& event : wait_list) {
      // A null Event reports kFailed, so depending on one fails too —
      // silently skipping it would run the command without its intended
      // ordering.
      if (!event.state_ && !state->dep_failed) {
        state->dep_failed = true;
        state->dep_error = Error{"null event in wait list", "rt"};
      }
      EventGraph::link(state, event.state_);
    }
    EventGraph::attach_to_queue(state, queue);
    ready = state->deps_remaining == 0;
  }
  if (ready) schedule(state);
  return Event(state);
}

void Context::schedule(std::shared_ptr<detail::EventState> state) {
  // Notify while holding the lock: once we release it, a worker may pop
  // and settle the command, letting finish()/~Context proceed and destroy
  // the condition variable under a pending post-unlock notify.
  util::MutexLock lock(sched_mutex_);
  scheduler_->push(std::move(state));
  sched_cv_.notify_one();
}

void Context::worker_loop() {
  util::MutexLock lock(sched_mutex_);
  std::vector<std::shared_ptr<detail::EventState>> batch;
  while (true) {
    // Inline predicate loop: a wait lambda would read the guarded fields
    // outside the capability as far as the analysis can tell.
    while (!stopping_ && scheduler_->empty()) sched_cv_.wait(sched_mutex_);
    if (scheduler_->empty()) return;  // stopping_, fully drained
    auto state = scheduler_->pop();
    // A popped kernel command on a batching queue tries to fuse with the
    // policy's NEXT picks while we still hold the scheduler lock; anything
    // else (transfers, natives, big launches, batching off) runs alone
    // through the path every command took before batching existed.
    if (state->kernel != nullptr && state->kernel->batchable && state->kernel->amortizable) {
      batch.clear();
      batch.push_back(std::move(state));
      assemble_batch(batch);
      lock.unlock();
      execute_batch(batch);
      batch.clear();  // drop the member refs promptly
      lock.lock();
    } else {
      lock.unlock();
      execute(state);
      lock.lock();
    }
  }
}

namespace {

/// Could any buffer span of `a` alias one of `b`? 64-bit arithmetic so
/// addr + bytes at the top of the 4 GiB device address space cannot wrap.
/// All-scalar launches (empty span lists) trivially never overlap.
bool buffers_overlap(const std::vector<std::pair<std::uint32_t, std::uint32_t>>& a,
                     const std::vector<std::pair<std::uint32_t, std::uint32_t>>& b) {
  for (const auto& [a_addr, a_bytes] : a) {
    const std::uint64_t a_begin = a_addr;
    const std::uint64_t a_end = a_begin + a_bytes;
    for (const auto& [b_addr, b_bytes] : b) {
      const std::uint64_t b_begin = b_addr;
      const std::uint64_t b_end = b_begin + b_bytes;
      if (a_begin < b_end && b_begin < a_end) return true;
    }
  }
  return false;
}

}  // namespace

void Context::assemble_batch(std::vector<std::shared_ptr<detail::EventState>>& batch) {
  const auto& leader = *batch.front()->kernel;
  const std::uint32_t max_launches = std::max<std::uint32_t>(1, leader.batch_max_launches);
  const std::uint64_t max_wait = leader.batch_max_wait_cycles;
  // Summed predict_stable cycles of the members so far — the batch-close
  // policy's estimate of how long the fused launch occupies the device.
  double summed = leader.stable_cost;
  // The candidate test runs inside the policy's own selection scan
  // (Scheduler::pop_if), so admitting a member costs ONE pass over the
  // ready set instead of peek's pass plus pop's. Popping each member
  // individually (instead of bulk-extracting) is what keeps fair-share
  // accounting per segment: every pop debits ITS tenant the command's own
  // cost, exactly as the unbatched run would have.
  const auto admit = [&](const detail::EventState& next) {
    // Compatibility: a kernel command, batching enabled on its queue, the
    // leader's device and program, and buffer spans disjoint from EVERY
    // member already aboard (disjointness is what makes each segment's
    // result independent of segment order — the bit-identity contract).
    const auto* work = next.kernel.get();
    bool compatible = work != nullptr && work->batchable && work->device == leader.device &&
                      work->program_key == leader.program_key &&
                      work->program.words() == leader.program.words();
    if (compatible) {
      for (const auto& member : batch) {
        if (buffers_overlap(work->buffers, member->kernel->buffers)) {
          compatible = false;
          break;
        }
      }
    }
    if (!compatible) {
      batch_close_incompatible_total_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Amortization: fusing a launch that is big enough to amortize its own
    // fixed costs buys nothing and delays everyone behind the batch.
    if (!work->amortizable) {
      batch_close_unamortized_total_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (max_wait != 0 && summed + work->stable_cost > static_cast<double>(max_wait)) {
      batch_close_cycle_cap_total_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  };
  while (true) {
    if (batch.size() >= max_launches) {
      batch_close_size_cap_total_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    bool rejected = false;
    auto popped = scheduler_->pop_if(admit, &rejected);
    if (popped == nullptr) {
      // A rejecting admit() recorded its own close reason; null without a
      // rejection means the ready set ran dry.
      if (!rejected) batch_close_drained_total_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    summed += popped->kernel->stable_cost;
    batch.push_back(std::move(popped));
  }
}

void Context::execute_batch(std::vector<std::shared_ptr<detail::EventState>>& batch) {
  if (batch.size() == 1) {
    execute(batch.front());
    return;
  }
  auto& pool = devices_;
  const auto& plan = fault_plan_;
  const int dev = batch.front()->kernel->device;  // attempt 0 never relocates

  // Per-member pre-flight, mirroring execute() + run_kernel_command up to
  // the first dispatch: dependency failures, lost cancellation races, and
  // deadline-admission busts settle here and never reach the device;
  // members whose attempt 0 falls into an injected device-down window get
  // that outcome precomputed and skip the fused launch. Everything else
  // becomes a segment.
  std::vector<std::shared_ptr<detail::EventState>> members;  // fused, in batch order
  std::vector<sim::InjectedFault> faults;                    // parallel to members
  std::vector<std::pair<std::shared_ptr<detail::EventState>, Status>> downed;
  members.reserve(batch.size());
  faults.reserve(batch.size());
  for (auto& state : batch) {
    bool dep_failed = false;
    Error dep_error;
    {
      util::MutexLock graph_lock(graph_mutex());
      dep_failed = state->dep_failed;
      dep_error = state->dep_error;
    }
    if (dep_failed) {
      const bool cancelled = dep_error.code == ErrorCode::kCancelled;
      state->run = nullptr;
      settle_and_route(
          state,
          Status{Error{std::string(cancelled ? "dependency cancelled: " : "dependency failed: ") +
                           dep_error.to_string(),
                       "rt", cancelled ? ErrorCode::kCancelled : ErrorCode::kUnknown}});
      continue;
    }
    {
      util::MutexLock lock(state->m);
      if (state->settle_claimed) {  // cancel() won; it settles on its own thread
        state->run = nullptr;
        continue;
      }
      state->status = EventStatus::kRunning;
    }
    const auto& work = *state->kernel;
    if (work.deadline != 0 && work.stable_cost > static_cast<double>(work.deadline)) {
      deadline_misses_total_.fetch_add(1, std::memory_order_relaxed);
      state->run = nullptr;
      settle_and_route(
          state, Status{Error{format("predicted %.0f cycles exceeds deadline of %llu",
                                     work.stable_cost,
                                     static_cast<unsigned long long>(work.deadline)),
                              "rt.deadline", ErrorCode::kDeadlineExceeded}});
      continue;
    }
    if (plan != nullptr && plan->device_down(dev, state->tag.seq)) {
      downed.emplace_back(
          state, Status{Error{format("injected device loss: device %d is down", dev),
                              "rt.launch", ErrorCode::kDeviceLost}});
      continue;
    }
    sim::InjectedFault fault;
    if (plan != nullptr) {
      fault.trap = plan->should_trap(state->tag.seq, 0);
      fault.stall_cycles = plan->stall_cycles(state->tag.seq, 0);
    }
    members.push_back(state);
    faults.push_back(fault);
  }


  // One budget token for the whole fused execution — the same token a
  // worker would hold for one command, because the fused launch occupies
  // exactly one worker.
  const unsigned token = budget_->try_acquire(1);
  std::vector<Result<sim::LaunchStats>> results;
  if (!members.empty()) {
    if (members.size() >= 2) {
      batches_formed_total_.fetch_add(1, std::memory_order_relaxed);
      launches_batched_total_.fetch_add(members.size(), std::memory_order_relaxed);
    }
    std::vector<sim::LaunchSegment> segments;
    segments.reserve(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto& work = *members[i]->kernel;
      segments.push_back(sim::LaunchSegment{&work.args, work.range.global_size,
                                            work.range.wg_size,
                                            plan != nullptr ? &faults[i] : nullptr});
    }
    batches_inflight_.fetch_add(1, std::memory_order_relaxed);
    results = [&] {
      util::MutexLock lock(pool.exec_mutex(dev));
      return pool.gpu(dev).try_launch_batch(members.front()->kernel->program, segments);
    }();
    batches_inflight_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Per-member continuation: the fused result IS attempt 0. Retries,
  // health accounting, cost-model observation and the completion-deadline
  // check all run through the same loop as a standalone command, so a
  // batched launch's terminal state can never diverge from the unbatched
  // run's.
  auto continue_member = [this](const std::shared_ptr<detail::EventState>& state,
                                const Status& first) {
    Status final_status;
    try {
      final_status = kernel_attempt_loop(*state, &first);
    } catch (const std::exception& e) {
      final_status = Error{e.what(), "rt"};
    }
    state->run = nullptr;
    state->kernel = nullptr;  // drop captured program/args promptly
    settle_and_route(state, std::move(final_status));
  };
  for (std::size_t i = 0; i < members.size(); ++i) {
    Status first;
    if (results[i].ok()) {
      members[i]->stats = std::move(results[i]).value();
    } else {
      first = results[i].error();
    }
    continue_member(members[i], first);
  }
  for (const auto& [state, first] : downed) continue_member(state, first);
  budget_->release(token);
}

void Context::execute(const std::shared_ptr<detail::EventState>& state) {
  Status result;
  // dep_failed/dep_error were last written under the graph mutex before
  // the final deps_remaining decrement that scheduled us; the snapshot
  // costs one uncontended lock per command and keeps the access checked.
  bool dep_failed = false;
  Error dep_error;
  {
    util::MutexLock graph_lock(graph_mutex());
    dep_failed = state->dep_failed;
    dep_error = state->dep_error;
  }
  if (dep_failed) {
    // Preserve the cause: a dependent of a cancelled command is itself
    // cancelled (the cascade keeps the kCancelled code and terminal
    // state), any other dependency failure stays a plain failure.
    const bool cancelled = dep_error.code == ErrorCode::kCancelled;
    result = Error{std::string(cancelled ? "dependency cancelled: " : "dependency failed: ") +
                       dep_error.to_string(),
                   "rt", cancelled ? ErrorCode::kCancelled : ErrorCode::kUnknown};
  } else {
    {
      // cancel() claims under this mutex while the status is kQueued; if
      // it won, the command is already settling on the canceller's thread
      // — drop it without running.
      util::MutexLock lock(state->m);
      if (state->settle_claimed) {
        state->run = nullptr;
        return;
      }
      state->status = EventStatus::kRunning;
    }
    // Hold one budget token while the command runs, so launches on other
    // workers only borrow genuinely idle capacity for their tick gangs.
    const unsigned token = budget_->try_acquire(1);
    try {
      result = state->run(*state);
    } catch (const std::exception& e) {
      result = Error{e.what(), "rt"};
    }
    budget_->release(token);
  }
  state->run = nullptr;     // drop captured buffers/programs promptly
  state->kernel = nullptr;  // ...and the kernel work (program + argument words)
  settle_and_route(state, std::move(result));
}

void Context::settle_and_route(const std::shared_ptr<detail::EventState>& state,
                               Status result) {
  {
    util::MutexLock lock(state->m);
    if (state->settle_claimed) return;  // user events: complete() is idempotent
    state->settle_claimed = true;
  }
  finish_settle(state, std::move(result));
}

void Context::finish_settle(const std::shared_ptr<detail::EventState>& state, Status result) {
  // Release the dispatch-time load reservation and the admission slot on
  // every terminal path — success, failure, cancellation, and dependency
  // failure all come through here, so the device's in-flight gauge and
  // the tenant's pending count are exact whatever happens to the command.
  if (state->pool_device >= 0) {
    state->context->devices_.settle_load(state->pool_device, state->pool_reserved);
  }
  if (state->admission_charged) {
    state->context->admission_.settle(state->tag.tenant);
  }
  // Record the outcome in the graph (queue any_failed, dependent failure
  // marks) BEFORE publishing the terminal status: a finish() waiter that
  // wakes on the status change must already see the failure flag.
  auto ready = EventGraph::settle(state, result);
  {
    util::MutexLock lock(state->m);
    state->status = result.ok() ? EventStatus::kComplete
                    : result.error().code == ErrorCode::kCancelled ? EventStatus::kCancelled
                                                                   : EventStatus::kFailed;
    if (!result.ok()) state->error = result.error();
  }
  state->cv.notify_all();

  // Route each newly-ready dependent to its OWN context's scheduler
  // (wait-lists may cross Context instances; an event must never run on a
  // foreign pool, whose drain would not cover it). Dependents sharing a
  // context are handed over as one batch: one lock + one wake per settle,
  // and a gate releasing N commands presents all N to the policy at once.
  std::size_t start = 0;
  while (start < ready.size()) {
    Context* owner = ready[start]->context;
    GPUP_CHECK_MSG(owner != nullptr, "dependent without a context");
    // Group the contiguous run with the same owner (the common case is
    // one context, one run). The notify stays under the lock: after the
    // unlock a worker of `owner` may pop and settle the batch, letting a
    // foreign owner's finish()/destructor run and destroy the condition
    // variable before a post-unlock notify could touch it.
    std::size_t end = start + 1;
    while (end < ready.size() && ready[end]->context == owner) ++end;
    {
      util::MutexLock lock(owner->sched_mutex_);
      for (std::size_t i = start; i < end; ++i) {
        owner->scheduler_->push(std::move(ready[i]));
      }
      if (end - start > 1) {
        owner->sched_cv_.notify_all();
      } else {
        owner->sched_cv_.notify_one();
      }
    }
    start = end;
  }
}

// ---- kernel command bodies ------------------------------------------------

Status Context::run_kernel_command(detail::EventState& state) {
  const auto& work = *state.kernel;
  // Deadline admission: a launch the (frozen) cost model predicts over
  // its deadline fails up front, before occupying any device.
  if (work.deadline != 0 && work.stable_cost > static_cast<double>(work.deadline)) {
    deadline_misses_total_.fetch_add(1, std::memory_order_relaxed);
    return Error{format("predicted %.0f cycles exceeds deadline of %llu", work.stable_cost,
                        static_cast<unsigned long long>(work.deadline)),
                 "rt.deadline", ErrorCode::kDeadlineExceeded};
  }
  return kernel_attempt_loop(state, nullptr);
}

Status Context::kernel_attempt_loop(detail::EventState& state, const Status* first_outcome) {
  const auto& work = *state.kernel;
  auto& pool = devices_;
  const int attempts = std::max(1, work.retry.max_attempts);
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries_total_.fetch_add(1, std::memory_order_relaxed);
    }
    if (attempt > 0 && work.retry.backoff.count() > 0) {
      // Exponential backoff, doubling-then-capped at max_backoff,
      // optionally jittered into [delay/2, delay] by a pure hash of
      // (jitter_seed, command seq, attempt) — deterministic, so
      // chaos runs stay reproducible. Host-side pacing only, never
      // part of any simulated result.
      auto delay = static_cast<std::uint64_t>(work.retry.backoff.count());
      for (int i = 0; i < attempt - 1 && delay < (1ull << 62); ++i) delay <<= 1;
      const auto cap = static_cast<std::uint64_t>(work.retry.max_backoff.count());
      if (cap > 0 && delay > cap) delay = cap;
      if (work.retry.jitter_seed != 0 && delay > 1) {
        const std::uint64_t scramble =
            schedule_key(work.retry.jitter_seed,
                         state.tag.seq * 1000003ull + static_cast<std::uint64_t>(attempt));
        delay = delay / 2 + scramble % (delay - delay / 2 + 1);
      }
      // gpup-lint: allow(wall-clock) retry backoff (capped + seeded-jitter) paces the host between attempts, not the simulation
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
    // Relocatable launches walk the pool deterministically; pinned
    // launches retry in place. Attempt identity (seq, attempt, dev)
    // fully determines every injected fault, so retried commands
    // reach the same terminal state at any worker count — and whether
    // attempt 0 ran fused (`first_outcome`) or standalone.
    const int dev = work.can_relocate ? (work.device + attempt) % pool.size() : work.device;
    Status outcome = attempt == 0 && first_outcome != nullptr
                         ? *first_outcome
                         : kernel_attempt(state, attempt, dev);
    if (outcome.ok()) {
      cost_model_->observe(work.profile, pool.gpu(dev).config(), state.stats.global_size,
                           state.stats.wg_size, state.stats.cycles);
    }
    // Health accounting: only outcomes that say something about the
    // DEVICE count — traps, device loss, success. Argument errors
    // would slander a healthy device.
    const ErrorCode code = outcome.ok() ? ErrorCode::kUnknown : outcome.error().code;
    if (outcome.ok() || code == ErrorCode::kTrap || code == ErrorCode::kDeviceLost) {
      pool.record_launch_outcome(dev, outcome.ok(), code == ErrorCode::kDeviceLost);
    }
    if (outcome.ok()) {
      if (work.deadline != 0 && state.stats.cycles > work.deadline) {
        deadline_misses_total_.fetch_add(1, std::memory_order_relaxed);
        return Error{format("launch took %llu cycles, deadline was %llu",
                            static_cast<unsigned long long>(state.stats.cycles),
                            static_cast<unsigned long long>(work.deadline)),
                     "rt.deadline", ErrorCode::kDeadlineExceeded};
      }
      return {};
    }
    last = std::move(outcome);
    // Only transient failures are worth retrying.
    if (code != ErrorCode::kTrap && code != ErrorCode::kDeviceLost) break;
  }
  return last;
}

Status Context::kernel_attempt(detail::EventState& state, int attempt, int dev) {
  const auto& work = *state.kernel;
  auto& pool = devices_;
  const auto& plan = fault_plan_;
  if (plan != nullptr && plan->device_down(dev, state.tag.seq)) {
    return Error{format("injected device loss: device %d is down", dev), "rt.launch",
                 ErrorCode::kDeviceLost};
  }
  sim::InjectedFault fault;
  if (plan != nullptr) {
    fault.trap = plan->should_trap(state.tag.seq, attempt);
    fault.stall_cycles = plan->stall_cycles(state.tag.seq, attempt);
  }
  Result<sim::LaunchStats> stats = [&] {
    util::MutexLock lock(pool.exec_mutex(dev));
    return pool.gpu(dev).try_launch(work.program, work.args, work.range.global_size,
                                    work.range.wg_size, plan != nullptr ? &fault : nullptr);
  }();
  if (!stats.ok()) return stats.error();
  state.stats = std::move(stats).value();
  return {};
}

// ---- CommandQueue ---------------------------------------------------------

int CommandQueue::device_index() const {
  GPUP_CHECK_MSG(valid(), "null command queue");
  return state_->device;
}

QueueMode CommandQueue::mode() const {
  GPUP_CHECK_MSG(valid(), "null command queue");
  return state_->mode;
}

int CommandQueue::priority() const {
  GPUP_CHECK_MSG(valid(), "null command queue");
  return state_->priority;
}

std::uint64_t CommandQueue::tenant() const {
  GPUP_CHECK_MSG(valid(), "null command queue");
  return state_->tenant;
}

Result<Buffer> CommandQueue::alloc(std::uint32_t bytes) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  auto& pool = context_->devices_;
  const int device = state_->device;
  // Injected allocation failures consume a per-context ordinal, so a
  // fixed plan fails the same allocations of a deterministic allocation
  // sequence regardless of which queue issues them.
  if (const auto& plan = context_->fault_plan_) {
    const auto site = context_->next_alloc_site_.fetch_add(1, std::memory_order_relaxed);
    if (plan->should_fail_alloc(site)) {
      return Error{format("injected allocation failure (%u bytes, device %d)", bytes, device),
                   "rt.alloc", ErrorCode::kOom};
    }
  }
  util::MutexLock lock(pool.alloc_mutex(device));
  auto addr = pool.gpu(device).try_alloc(bytes);
  if (!addr.ok()) return addr.error();
  return Buffer{addr.value(), bytes, device};
}

Event CommandQueue::enqueue_write(const Buffer& buffer, std::vector<std::uint32_t> words,
                                  const std::vector<Event>& wait_list) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  auto& pool = context_->devices_;
  const int device = state_->device;
  return context_->submit(
      state_,
      [&pool, device, buffer, words = std::move(words)](detail::EventState&) -> Status {
        if (buffer.device != device) {
          return Error{format("buffer lives on device %d, queue is bound to device %d",
                              buffer.device, device),
                       "rt.write"};
        }
        if (words.size() * 4 > buffer.bytes) {
          return Error{format("write of %zu words overflows %u-byte buffer", words.size(),
                              buffer.bytes),
                       "rt.write"};
        }
        util::MutexLock lock(pool.exec_mutex(device));
        return pool.gpu(device).try_write(buffer.addr, words);
      },
      wait_list);
}

Event CommandQueue::enqueue_kernel(const isa::Program& program,
                                   std::vector<std::uint32_t> args, const NdRange& range,
                                   const std::vector<Event>& wait_list) {
  return enqueue_kernel(program, std::move(args), range, LaunchOptions{}, wait_list);
}

Event CommandQueue::enqueue_kernel(const isa::Program& program,
                                   std::vector<std::uint32_t> args, const NdRange& range,
                                   const LaunchOptions& launch,
                                   const std::vector<Event>& wait_list) {
  // Raw word packs give no way to tell buffer addresses from scalars:
  // assume device memory is referenced, so retries stay on the bound
  // device (the Args overload can prove otherwise) — and the launch's
  // buffer footprint is unknown, so it can never join a batch.
  return enqueue_kernel_impl(program, std::move(args), range, launch, /*relocatable=*/false,
                             /*buffers_known=*/false, {}, wait_list);
}

Event CommandQueue::enqueue_kernel(const isa::Program& program, const Args& args,
                                   const NdRange& range, const LaunchOptions& launch,
                                   const std::vector<Event>& wait_list) {
  return enqueue_kernel_impl(program, args.words(), range, launch,
                             /*relocatable=*/!args.has_buffers(),
                             /*buffers_known=*/true, args.buffers(), wait_list);
}

Event CommandQueue::enqueue_kernel_impl(const isa::Program& program,
                                        std::vector<std::uint32_t> args, const NdRange& range,
                                        const LaunchOptions& launch, bool relocatable,
                                        bool buffers_known,
                                        std::vector<std::pair<std::uint32_t, std::uint32_t>> buffers,
                                        const std::vector<Event>& wait_list) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  auto& pool = context_->devices_;
  const int device = state_->device;
  // Predicted cycles drive three things: the fair-share cost (a tenant
  // burning long launches is debited proportionally more than one issuing
  // quick ones), the device's in-flight load gauge (reserved here,
  // settled when the command turns terminal), and — once the launch
  // completes — the cost model's online refinement for this (program,
  // device) pair. The gauge uses the live (EWMA-refined) prediction; the
  // scheduler tag uses the pair-frozen one, because policies must stay
  // pure functions of submission history (see Scheduler's determinism
  // contract) while the gauge may track the workload freely. The frozen
  // prediction also gates the deadline at admission for the same reason:
  // whether a launch is predicted to bust its deadline must not depend on
  // when unrelated completions landed.
  const auto cost_model = context_->cost_model_;
  const auto profile = cost_model->profile_for(program);
  const double predicted =
      cost_model->predict(profile, pool.config(device), range.global_size, range.wg_size);
  const double stable_cost = cost_model->predict_stable(profile, pool.config(device),
                                                        range.global_size, range.wg_size);
  const std::uint64_t deadline =
      launch.deadline_cycles != 0 ? launch.deadline_cycles : state_->deadline_cycles;
  const auto reserved =
      static_cast<std::uint64_t>(std::llround(std::max(0.0, predicted)));
  pool.reserve(device, reserved);
  // Kernel commands are data, not closures: everything the attempt loop
  // (and the batching layer's compatibility checks) needs hangs off the
  // EventState as one immutable KernelWork.
  auto work = std::make_shared<detail::KernelWork>();
  work->program = program;
  work->args = std::move(args);
  work->range = range;
  work->program_key = profile.key;
  work->profile = profile;
  work->stable_cost = stable_cost;
  work->deadline = deadline;
  work->retry = launch.retry;
  work->can_relocate = relocatable && launch.retry.relocate && pool.size() > 1;
  work->device = device;
  work->buffers = std::move(buffers);
  work->buffers_known = buffers_known;
  // Batch eligibility, resolved against the owning queue right here:
  // only launches whose buffer footprint is declared (Args builder) can
  // prove disjointness, and only small launches amortize.
  work->batchable = state_->batch_enabled && buffers_known;
  work->amortizable = stable_cost <= state_->batch_small_launch_cycles;
  work->batch_max_launches = state_->batch_max_launches;
  work->batch_max_wait_cycles = state_->batch_max_wait_cycles;
  return context_->submit(
      state_,
      [](detail::EventState& state) -> Status {
        return state.context->run_kernel_command(state);
      },
      wait_list, std::max(1.0, stable_cost), device, reserved, std::move(work));
}

Event CommandQueue::enqueue_read(const Buffer& buffer, const std::vector<Event>& wait_list) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  auto& pool = context_->devices_;
  const int device = state_->device;
  return context_->submit(
      state_,
      [&pool, device, buffer](detail::EventState& state) -> Status {
        if (buffer.device != device) {
          return Error{format("buffer lives on device %d, queue is bound to device %d",
                              buffer.device, device),
                       "rt.read"};
        }
        state.data.resize(buffer.words());
        util::MutexLock lock(pool.exec_mutex(device));
        auto status = pool.gpu(device).try_read(buffer.addr, state.data);
        if (!status.ok()) state.data.clear();
        return status;
      },
      wait_list);
}

Event CommandQueue::enqueue_native(std::function<Status()> fn,
                                   const std::vector<Event>& wait_list) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  return context_->submit(
      state_,
      [fn = std::move(fn)](detail::EventState&) -> Status { return fn(); },
      wait_list);
}

Result<CommandQueue::SharedUpload> CommandQueue::upload_shared(
    std::uint64_t key, std::span<const std::uint32_t> words) {
  GPUP_CHECK_MSG(valid(), "null command queue");
  auto& pool = context_->devices_;
  auto cached = pool.find_or_upload(
      state_->device, key, words, [&]() -> Result<DevicePool::CachedUpload> {
        const auto word_count = static_cast<std::uint32_t>(words.size());
        auto buffer = alloc_words(word_count);
        if (!buffer.ok()) return buffer.error();
        Event write =
            enqueue_write(buffer.value(), std::vector<std::uint32_t>(words.begin(), words.end()));
        return DevicePool::CachedUpload{buffer.value(), write.state_};
      });
  if (!cached.ok()) return cached.error();
  return SharedUpload{cached.value().buffer, Event(cached.value().write)};
}

int CommandQueue::cancel_pending() {
  GPUP_CHECK_MSG(valid(), "null command queue");
  std::vector<std::shared_ptr<detail::EventState>> pending;
  {
    util::MutexLock lock(graph_mutex());
    pending = state_->unsettled;
  }
  // cancel() claims only still-queued commands; running or terminal ones
  // return false and settle through their own paths — this loop can never
  // yank work off a device or double-settle anything.
  int cancelled = 0;
  for (const auto& event : pending) cancelled += Event(event).cancel() ? 1 : 0;
  return cancelled;
}

bool CommandQueue::finish() {
  GPUP_CHECK_MSG(valid(), "null command queue");
  std::vector<std::shared_ptr<detail::EventState>> pending;
  {
    util::MutexLock lock(graph_mutex());
    pending = state_->unsettled;
  }
  // In-order or out-of-order: wait for the full unsettled snapshot (an
  // out-of-order queue has no tail whose settling covers its history).
  for (const auto& event : pending) (void)Event(event).wait();
  util::MutexLock lock(graph_mutex());
  return !state_->any_failed;
}

}  // namespace gpup::rt
