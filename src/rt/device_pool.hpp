// Capability-aware device-pool layer of the host runtime.
//
// A Context owns one DevicePool. Unlike the PR-2 pool, the devices need
// not be identical: every `sim::Gpu` carries its own `sim::GpuConfig`
// (heterogeneous CU counts, cache geometry, memory sizes — the G-GPU
// generator's whole design space can serve side by side). Queues either
// name a device index explicitly or describe what they need with
// `DeviceRequirements`, and `place()` binds them to the least-loaded
// matching device (lowest index on ties — deterministic).
//
// The pool also keeps a per-device *affinity cache* of uploaded buffers:
// read-only inputs keyed by a caller-supplied content tag are uploaded to
// a given device once and every later queue bound to that device reuses
// the same buffer (plus the upload's event for ordering). The bump
// allocator never frees, so cached buffers stay valid for the context's
// lifetime.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/gpu.hpp"
#include "src/util/status.hpp"

namespace gpup::rt {

namespace detail {
struct EventState;
}  // namespace detail

/// A device-memory allocation. `device` names the pool device the buffer
/// lives on; commands reject buffers from a different device.
struct Buffer {
  std::uint32_t addr = 0;   ///< device byte address (as passed to kernels)
  std::uint32_t bytes = 0;
  int device = 0;           ///< owning device index within the Context

  [[nodiscard]] std::uint32_t words() const { return bytes / 4; }
};

/// What a queue needs from a device. Default matches any device.
struct DeviceRequirements {
  int min_cu_count = 0;
  std::uint32_t min_global_mem_bytes = 0;
  std::uint32_t min_cache_bytes = 0;
  std::uint32_t min_lram_words_per_cu = 0;
  bool needs_hw_divider = false;

  [[nodiscard]] bool matches(const sim::GpuConfig& config) const;
  /// "cu>=4 cache>=16384B" — the unmet clauses, for placement errors.
  [[nodiscard]] std::string describe() const;
};

/// Content hash for affinity-cache keys (FNV-1a over the words). Callers
/// with a natural identity (benchmark name, buffer id) can use their own
/// keys instead.
[[nodiscard]] std::uint64_t content_key(std::span<const std::uint32_t> words);

class DevicePool {
 public:
  explicit DevicePool(std::vector<sim::GpuConfig> configs);

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] sim::Gpu& gpu(int index) { return devices_[checked(index)]->gpu; }
  [[nodiscard]] const sim::GpuConfig& config(int index) const {
    return devices_[checked(index)]->gpu.config();
  }

  /// Serializes launches/copies on the device (a launch holds the device
  /// exclusively, like real hardware).
  [[nodiscard]] std::mutex& exec_mutex(int index) { return devices_[checked(index)]->exec; }
  /// Serializes synchronous allocation.
  [[nodiscard]] std::mutex& alloc_mutex(int index) { return devices_[checked(index)]->alloc; }

  /// The matching device with the fewest bound queues (lowest index wins
  /// ties); Error listing the unmet requirements when nothing matches.
  [[nodiscard]] Result<int> place(const DeviceRequirements& require) const;

  /// Account a queue binding (placement load; one per created queue).
  void bind(int index) { devices_[checked(index)]->bound_queues += 1; }
  [[nodiscard]] int bound_queues(int index) const {
    return devices_[checked(index)]->bound_queues;
  }

  // ---- affinity cache --------------------------------------------------
  /// One per-device cache entry: the uploaded buffer plus the write
  /// command's event state (dependents order behind it via wait-lists).
  struct CachedUpload {
    Buffer buffer;
    std::shared_ptr<detail::EventState> write;
  };

  /// Find `key` in the device's cache, or run `make` (under the cache
  /// lock, so exactly one uploader wins a race) and cache its result. A
  /// failed `make` (e.g. device OOM) is returned without caching, so a
  /// later retry can succeed. Entries are never erased.
  Result<CachedUpload> find_or_upload(int index, std::uint64_t key,
                                      const std::function<Result<CachedUpload>()>& make);

 private:
  struct Device {
    explicit Device(const sim::GpuConfig& config) : gpu(config) {}
    sim::Gpu gpu;
    std::mutex exec;
    std::mutex alloc;
    int bound_queues = 0;  ///< guarded by the Context's queues mutex
    mutable std::mutex cache_mutex;
    std::unordered_map<std::uint64_t, CachedUpload> cache;
  };

  [[nodiscard]] std::size_t checked(int index) const;

  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace gpup::rt
