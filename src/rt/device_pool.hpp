// Capability- and load-aware device-pool layer of the host runtime.
//
// A Context owns one DevicePool. Unlike the PR-2 pool, the devices need
// not be identical: every `sim::Gpu` carries its own `sim::GpuConfig`
// (heterogeneous CU counts, cache geometry, memory sizes — the G-GPU
// generator's whole design space can serve side by side). Queues either
// name a device index explicitly or describe what they need with
// `DeviceRequirements`, and `place()` binds them to a matching device.
//
// Placement is policy-driven (PlacementPolicy):
//
//   kPredictedCycles (default)  pick the capability match with the lowest
//       predicted completion time: the device's in-flight load gauge (the
//       predicted cycles of every dispatched-but-unsettled kernel, see
//       reserve()/settle_load()) plus the caller's cost-model prediction
//       for the new work on THAT device's config — so a fast device with
//       a short backlog beats an idle slow one when it would still finish
//       first. Ties fall back to bound queues, then lowest index.
//   kLeastBound                 the pre-cost-model behaviour, kept for
//       A/B: fewest bound queues wins, lowest index breaks ties. Blind to
//       work size and device speed.
//
// The load gauge is real accounting: the runtime reserves a kernel's
// predicted cycles at dispatch and settles the same amount when the
// command reaches ANY terminal state (complete, failed, dependency-
// failed), so the gauge can never leak the way the old bound-queues
// counter did. Queue bindings themselves are released too: the Context
// unbinds a queue once its last outside handle is gone and its history
// settled (see Context prune), so long-lived contexts stop avoiding
// devices whose queues are long gone.
//
// The pool also keeps a per-device *affinity cache* of uploaded buffers:
// read-only inputs keyed by a caller-supplied content tag are uploaded to
// a given device once and every later queue bound to that device reuses
// the same buffer (plus the upload's event for ordering). Cache hits
// verify the stored words against the caller's — a key collision (two
// different buffers hashing alike, or two callers reusing a tag) uploads
// separately instead of silently serving another buffer's contents to a
// kernel. The bump allocator never frees, so cached buffers stay valid
// for the context's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/gpu.hpp"
#include "src/util/annotated_mutex.hpp"
#include "src/util/status.hpp"

namespace gpup::rt {

namespace detail {
struct EventState;
}  // namespace detail

/// A device-memory allocation. `device` names the pool device the buffer
/// lives on; commands reject buffers from a different device.
struct Buffer {
  std::uint32_t addr = 0;   ///< device byte address (as passed to kernels)
  std::uint32_t bytes = 0;
  int device = 0;           ///< owning device index within the Context

  [[nodiscard]] std::uint32_t words() const { return bytes / 4; }
};

/// What a queue needs from a device. Default matches any device.
struct DeviceRequirements {
  int min_cu_count = 0;
  std::uint32_t min_global_mem_bytes = 0;
  std::uint32_t min_cache_bytes = 0;
  std::uint32_t min_lram_words_per_cu = 0;
  bool needs_hw_divider = false;

  [[nodiscard]] bool matches(const sim::GpuConfig& config) const;
  /// "cu>=4 cache>=16384B" — the unmet clauses, for placement errors.
  [[nodiscard]] std::string describe() const;
};

/// How place() picks among capability matches — see the file comment.
enum class PlacementPolicy { kPredictedCycles, kLeastBound };

/// Circuit-breaker knobs for per-device health tracking. A device whose
/// recent launch-attempt failure fraction exceeds `quarantine_threshold`
/// (over at least `min_samples` of the last `window` attempts), or that
/// reports a device-fatal failure (ErrorCode::kDeviceLost), is
/// *quarantined*: place() stops giving it new queues. Quarantine is a
/// wall-clock/placement matter only — launches already bound to the
/// device still run (and act as probes), and after `probe_interval`
/// placements that skipped the device, place() half-opens the breaker and
/// may pick it again. Any successful attempt readmits the device and
/// clears its window.
struct HealthPolicy {
  std::uint32_t window = 16;
  std::uint32_t min_samples = 8;
  double quarantine_threshold = 0.5;
  std::uint32_t probe_interval = 8;
};

[[nodiscard]] const char* to_string(PlacementPolicy policy);

/// Content hash for affinity-cache keys (FNV-1a over the length and the
/// words). Callers with a natural identity (benchmark name, buffer id)
/// can use their own keys instead — hits verify contents either way, so a
/// colliding key costs a duplicate upload, never a wrong buffer.
[[nodiscard]] std::uint64_t content_key(std::span<const std::uint32_t> words);

class DevicePool {
 public:
  explicit DevicePool(std::vector<sim::GpuConfig> configs,
                      PlacementPolicy policy = PlacementPolicy::kPredictedCycles,
                      HealthPolicy health = HealthPolicy{});

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] PlacementPolicy policy() const { return policy_; }
  [[nodiscard]] sim::Gpu& gpu(int index) { return devices_[checked(index)]->gpu; }
  [[nodiscard]] const sim::GpuConfig& config(int index) const {
    return devices_[checked(index)]->gpu.config();
  }

  /// Serializes launches/copies on the device (a launch holds the device
  /// exclusively, like real hardware).
  [[nodiscard]] util::Mutex& exec_mutex(int index) { return devices_[checked(index)]->exec; }
  /// Serializes synchronous allocation.
  [[nodiscard]] util::Mutex& alloc_mutex(int index) { return devices_[checked(index)]->alloc; }

  /// Pick a device for a new queue. `predicted_cycles`, when non-empty,
  /// holds the caller's per-device cost-model prediction for the queue's
  /// hinted workload (one entry per pool device) and feeds the
  /// kPredictedCycles completion-time score; empty means "no hint" and
  /// scores on in-flight load alone. Error listing the unmet requirements
  /// when nothing matches.
  [[nodiscard]] Result<int> place(const DeviceRequirements& require,
                                  const std::vector<double>& predicted_cycles = {}) const
      GPUP_EXCLUDES(bind_mutex_);

  /// Account a queue binding (one per created queue; released by unbind
  /// when the Context prunes the dead queue).
  void bind(int index) GPUP_EXCLUDES(bind_mutex_);
  void unbind(int index) GPUP_EXCLUDES(bind_mutex_);
  [[nodiscard]] int bound_queues(int index) const GPUP_EXCLUDES(bind_mutex_);

  // ---- in-flight load gauge -------------------------------------------
  /// Reserve a dispatched kernel's predicted cycles on its device; the
  /// runtime settles the exact same amount when the command reaches a
  /// terminal state (complete, failed, or dependency-failed), so the
  /// gauge is leak-free by construction.
  void reserve(int index, std::uint64_t predicted_cycles) {
    devices_[checked(index)]->inflight_cycles.fetch_add(predicted_cycles,
                                                        std::memory_order_relaxed);
  }
  void settle_load(int index, std::uint64_t predicted_cycles) {
    devices_[checked(index)]->inflight_cycles.fetch_sub(predicted_cycles,
                                                        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t inflight_cycles(int index) const {
    return devices_[checked(index)]->inflight_cycles.load(std::memory_order_relaxed);
  }

  // ---- health / quarantine (circuit breaker) ---------------------------
  /// Record the outcome of one launch attempt on `index`. `device_fatal`
  /// (a kDeviceLost failure) quarantines immediately; otherwise the
  /// sliding failure-rate window decides (see HealthPolicy). A successful
  /// attempt on a quarantined device readmits it. Never changes any
  /// command's result — only which devices place() favors.
  void record_launch_outcome(int index, bool ok, bool device_fatal);
  [[nodiscard]] bool quarantined(int index) const {
    return devices_[checked(index)]->quarantined.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const HealthPolicy& health_policy() const { return health_; }

  /// Affinity-cache entry count (all collision chains) on one device —
  /// leak instrumentation for the soak suite.
  [[nodiscard]] std::size_t cache_entries(int index) const;

  // ---- affinity cache --------------------------------------------------
  /// One per-device cache entry: the uploaded buffer plus the write
  /// command's event state (dependents order behind it via wait-lists).
  struct CachedUpload {
    Buffer buffer;
    std::shared_ptr<detail::EventState> write;
  };

  /// Find `key` in the device's cache, or run `make` (under the cache
  /// lock, so exactly one uploader wins a race) and cache its result. A
  /// hit is only served after verifying the cached upload's stored words
  /// equal `words` — a colliding key falls through to `make` and is
  /// cached alongside, so no caller ever reads another buffer's contents.
  /// A failed `make` (e.g. device OOM) is returned without caching, so a
  /// later retry can succeed. Entries are never erased.
  Result<CachedUpload> find_or_upload(int index, std::uint64_t key,
                                      std::span<const std::uint32_t> words,
                                      const std::function<Result<CachedUpload>()>& make);

 private:
  struct CacheEntry {
    CachedUpload upload;
    /// Host copy compared on every hit. A host copy is the only safe
    /// verification source: the upload's write command may still be
    /// queued when a second caller hits the cache, so device memory
    /// cannot be read back for comparison. Cost: one host-side duplicate
    /// of each shared read-only input for the context's lifetime.
    std::vector<std::uint32_t> words;
  };

  struct Device {
    explicit Device(const sim::GpuConfig& config) : gpu(config) {}
    sim::Gpu gpu;
    util::Mutex exec;
    util::Mutex alloc;
    std::atomic<std::uint64_t> inflight_cycles{0};  ///< predicted, unsettled
    // Health: the flag is read lock-free on the placement path; the
    // outcome window behind it is guarded by health_mutex.
    std::atomic<bool> quarantined{false};
    mutable std::atomic<std::uint32_t> quarantine_skips{0};  ///< placements skipped
    mutable util::Mutex health_mutex;
    /// Ring of recent attempts (1 = failed).
    std::vector<char> outcomes GPUP_GUARDED_BY(health_mutex);
    std::size_t outcome_next GPUP_GUARDED_BY(health_mutex) = 0;
    std::uint32_t outcome_fails GPUP_GUARDED_BY(health_mutex) = 0;
    mutable util::Mutex cache_mutex;
    /// Key -> every distinct content uploaded under it (collisions chain).
    std::unordered_map<std::uint64_t, std::vector<CacheEntry>> cache
        GPUP_GUARDED_BY(cache_mutex);
  };

  [[nodiscard]] std::size_t checked(int index) const;

  PlacementPolicy policy_;
  HealthPolicy health_;
  std::vector<std::unique_ptr<Device>> devices_;
  // Queue-binding counts live at pool level (one slot per device) rather
  // than inside Device, so the capability annotation can name the mutex:
  // they used to be "guarded by the Context's queues mutex", a cross-class
  // contract no analysis could check. bind_mutex_ is a leaf lock —
  // acquired after the Context's queues_mutex_, never holding anything
  // else — so the lock-order change is strictly local.
  mutable util::Mutex bind_mutex_;
  std::vector<int> bound_ GPUP_GUARDED_BY(bind_mutex_);
};

}  // namespace gpup::rt
