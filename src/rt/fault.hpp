// Deterministic fault injection for the host runtime.
//
// Thread safety: a FaultPlan is deliberately immutable — seed and spec are
// fixed at construction and every query is a pure hash of its arguments,
// so worker threads share one plan with no mutex at all. That is why this
// file carries none of the GPUP_GUARDED_BY annotations the rest of src/rt
// does (src/util/annotated_mutex.hpp): there is no guarded state to
// declare. Keep it that way; a mutable FaultPlan would need both a mutex
// and a determinism story.
//
// A FaultPlan is a seeded, *pure* description of which operations fail and
// how: every decision is a hash of (seed, fault kind, site), where a site
// is a submission-time identity — a kernel command's global sequence
// number, an allocation's per-context ordinal — never a wall-clock reading
// or a live attempt order. Same seed + same submissions ⇒ the exact same
// injected schedule, at any worker-thread count, which is what lets the
// chaos suite assert bit-identical terminal-state vectors across 1/4/hw
// workers (see docs/runtime.md "Failure semantics").
//
// Supported faults (FaultSpec):
//   trap        a launch attempt raises a transient device trap
//               (ErrorCode::kTrap) instead of running;
//   stall       a launch runs normally but reports `stall_cycles` extra
//               simulated cycles (models thermal throttling / retried DRAM
//               transactions) — deadline enforcement sees the stall;
//   alloc fail  a device allocation reports OOM (ErrorCode::kOom);
//   device loss a device is "down" for whole windows of the submission
//               sequence space: any launch attempt routed to it during a
//               down window fails with ErrorCode::kDeviceLost. Windows are
//               contiguous blocks of `device_loss_window` sequence numbers
//               so outages look like real outages (a burst of failures,
//               then recovery) rather than white noise, and the check is
//               O(1) per attempt.
//
// Trap/stall decisions additionally hash the retry attempt ordinal, so a
// retried launch can deterministically succeed on its second attempt —
// without this every retry of an injected trap would re-trap forever and
// RetryPolicy would be untestable. Device-down windows deliberately do NOT
// depend on the attempt: a down device is down for everyone until the
// window passes, which is what drives relocation and quarantine.
//
// The plan is immutable after construction and shared by reference
// (ContextOptions::fault_plan); all methods are const and thread-safe.
#pragma once

#include <cstdint>
#include <memory>

namespace gpup::rt {

/// Probabilities and shapes of the injected faults. All rates in [0, 1];
/// the default spec injects nothing.
struct FaultSpec {
  double trap_rate = 0.0;
  double stall_rate = 0.0;
  std::uint64_t stall_cycles = 1000;
  double alloc_fail_rate = 0.0;
  /// Probability that a given (device, window) pair is a down window.
  double device_loss_rate = 0.0;
  /// Width of a down window in submission sequence numbers.
  std::uint64_t device_loss_window = 64;
};

class FaultPlan {
 public:
  FaultPlan(std::uint64_t seed, FaultSpec spec) : seed_(seed), spec_(spec) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Does launch attempt `attempt` of the command at `site` trap?
  [[nodiscard]] bool should_trap(std::uint64_t site, int attempt = 0) const;
  /// Extra simulated cycles injected into attempt `attempt` of the command
  /// at `site`; 0 = no stall.
  [[nodiscard]] std::uint64_t stall_cycles(std::uint64_t site, int attempt = 0) const;
  /// Does the `ordinal`-th allocation of the context fail?
  [[nodiscard]] bool should_fail_alloc(std::uint64_t ordinal) const;
  /// Is `device` down for the submission-sequence window containing `site`?
  [[nodiscard]] bool device_down(int device, std::uint64_t site) const;

 private:
  std::uint64_t seed_ = 0;
  FaultSpec spec_;
};

}  // namespace gpup::rt
