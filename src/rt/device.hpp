// DEPRECATED single-device blocking runtime, kept as a thin shim for one
// release. New code should use the asynchronous OpenCL-shaped API in
// src/rt/runtime.hpp (rt::Context / rt::CommandQueue / rt::Event): it
// serves many concurrent client queues over a device pool and reports
// errors as Result values / failed events instead of aborting.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/rt/runtime.hpp"

namespace gpup::rt {

class Device {
 public:
  explicit Device(sim::GpuConfig config) : gpu_(config) {}

  [[nodiscard]] const sim::GpuConfig& config() const { return gpu_.config(); }

  // ---- buffers ---------------------------------------------------------
  [[nodiscard]] Buffer alloc(std::uint32_t bytes) { return {gpu_.alloc(bytes), bytes, 0}; }
  [[nodiscard]] Buffer alloc_words(std::uint32_t words) {
    GPUP_CHECK_MSG(words <= 0xffffffffu / 4, "word count overflows the address space");
    return alloc(words * 4);
  }

  void write(const Buffer& buffer, std::span<const std::uint32_t> words) {
    GPUP_CHECK(words.size() * 4 <= buffer.bytes);
    gpu_.write(buffer.addr, words);
  }
  [[nodiscard]] std::vector<std::uint32_t> read(const Buffer& buffer) {
    std::vector<std::uint32_t> words(buffer.words());
    gpu_.read(buffer.addr, words);
    return words;
  }

  /// Release all device allocations (buffers become invalid).
  void reset() { gpu_.reset_allocator(); }

  // ---- kernels -----------------------------------------------------------
  /// Assemble kernel source (errors surface as Result).
  [[nodiscard]] static Result<isa::Program> compile(const std::string& source) {
    return isa::Assembler::assemble(source);
  }

  /// Enqueue + wait: runs the kernel to completion, returns cycle-accurate
  /// launch statistics. Aborts (throws) on any launch error.
  [[deprecated("use rt::Context / rt::CommandQueue::enqueue_kernel")]] [[nodiscard]]
  sim::LaunchStats run(const isa::Program& program, const std::vector<std::uint32_t>& args,
                       const NdRange& range) {
    return gpu_.launch(program, args, range.global_size, range.wg_size);
  }

 private:
  sim::Gpu gpu_;
};

}  // namespace gpup::rt
