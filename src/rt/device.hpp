// OpenCL-style host runtime for the G-GPU.
//
// Mirrors the paper's software story: "on the software side, only standard
// OpenCL-API procedures are needed". The host talks to the accelerator
// through the AXI control interface (modelled by this API): it writes the
// kernel binary into the CRAM, kernel arguments into the runtime memory
// (RTM), buffers into global memory, then starts the WG dispatcher and
// polls for completion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"
#include "src/util/status.hpp"

namespace gpup::rt {

/// A device-memory allocation.
struct Buffer {
  std::uint32_t addr = 0;   ///< device byte address (as passed to kernels)
  std::uint32_t bytes = 0;

  [[nodiscard]] std::uint32_t words() const { return bytes / 4; }
};

/// Kernel launch geometry (flat 1-D NDRange, as the paper's benchmarks use).
struct NdRange {
  std::uint32_t global_size = 0;
  std::uint32_t wg_size = 256;
};

class Device {
 public:
  explicit Device(sim::GpuConfig config) : gpu_(config) {}

  [[nodiscard]] const sim::GpuConfig& config() const { return gpu_.config(); }

  // ---- buffers ---------------------------------------------------------
  [[nodiscard]] Buffer alloc(std::uint32_t bytes) { return {gpu_.alloc(bytes), bytes}; }
  [[nodiscard]] Buffer alloc_words(std::uint32_t words) { return alloc(words * 4); }

  void write(const Buffer& buffer, std::span<const std::uint32_t> words) {
    GPUP_CHECK(words.size() * 4 <= buffer.bytes);
    gpu_.write(buffer.addr, words);
  }
  [[nodiscard]] std::vector<std::uint32_t> read(const Buffer& buffer) {
    std::vector<std::uint32_t> words(buffer.words());
    gpu_.read(buffer.addr, words);
    return words;
  }

  /// Release all device allocations (buffers become invalid).
  void reset() { gpu_.reset_allocator(); }

  // ---- kernels -----------------------------------------------------------
  /// Assemble kernel source (errors surface as Result).
  [[nodiscard]] static Result<isa::Program> compile(const std::string& source) {
    return isa::Assembler::assemble(source);
  }

  /// Enqueue + wait: runs the kernel to completion, returns cycle-accurate
  /// launch statistics.
  [[nodiscard]] sim::LaunchStats run(const isa::Program& program,
                                     const std::vector<std::uint32_t>& args,
                                     const NdRange& range) {
    return gpu_.launch(program, args, range.global_size, range.wg_size);
  }

 private:
  sim::Gpu gpu_;
};

/// Argument pack builder: buffers decay to their device addresses.
class Args {
 public:
  Args& add(const Buffer& buffer) {
    words_.push_back(buffer.addr);
    return *this;
  }
  Args& add(std::uint32_t value) {
    words_.push_back(value);
    return *this;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& words() const { return words_; }

 private:
  std::vector<std::uint32_t> words_;
};

}  // namespace gpup::rt
