// OpenCL-style asynchronous host runtime for the G-GPU.
//
// Mirrors the paper's software story: "on the software side, only standard
// OpenCL-API procedures are needed". The shapes match the OpenCL host API
// one-to-one:
//
//   rt::Context       — owns a pool of simulated devices, the scheduling
//                       policy, and the worker threads that execute
//                       commands (cl_context + the driver's scheduler).
//   rt::CommandQueue  — queue bound to one device of the pool; in-order by
//                       default, out-of-order on request; any number of
//                       queues run concurrently (cl_command_queue).
//   rt::Event         — handle to an enqueued command carrying its status
//                       (queued / running / complete / failed), the error
//                       on failure, per-launch sim::LaunchStats for kernel
//                       commands, and the returned words for read commands
//                       (cl_event).
//   rt::UserEvent     — host-settled event used to gate commands
//                       (clCreateUserEvent).
//
// The runtime is built from three lower layers, each replaceable on its
// own (see docs/runtime.md "The scheduler architecture"):
//
//   EventGraph  (event_graph.hpp)  which commands are *ready*;
//   Scheduler   (scheduler.hpp)    in what *order* workers pick them
//                                  (FIFO / priority+aging / fair share);
//   DevicePool  (device_pool.hpp)  *where* queues live — devices may be
//                                  heterogeneous (per-device GpuConfig),
//                                  queues place by DeviceRequirements onto
//                                  the device with the lowest predicted
//                                  completion time (sim::CostModel + the
//                                  pool's in-flight load gauge), and
//                                  shared inputs affinity-cache per device.
//
// Commands within one in-order queue execute in submission order; an
// out-of-order queue (QueueMode::kOutOfOrder) orders commands by explicit
// `wait_list` arguments only (clEnqueue*'s event_wait_list adds
// cross-queue dependencies in both modes). When a command fails, every
// command depending on it — for in-order queues all later commands of the
// queue, for out-of-order queues exactly the transitive wait-list
// dependents — fails with a dependency error rather than running on
// garbage. Nothing in this API aborts the host process: all fallible paths
// (assembler errors, argument-count mismatch, buffer overflow,
// global-memory OOM, placement misses, runtime traps) surface as Result
// values or failed events, so the runtime is safe to drive from untrusted
// callers.
//
// Determinism: each queue's results (buffer contents, LaunchStats, event
// order) depend only on the commands enqueued to it and their wait-lists,
// never on the worker-thread count, the scheduling policy, or what other
// queues do — launches hold their device exclusively and queues own
// disjoint buffers (shared affinity-cached inputs are read-only). The
// scheduling policy picks among *ready* commands and so shapes wall-clock
// order and fairness, not results. Policies themselves are deterministic
// (counter-based, seeded tie-break — SchedulerConfig::seed), so a
// single-worker context executes a reproducible schedule; with several
// workers the moment a command becomes ready depends on host timing and
// only results are guaranteed stable.
//
// One deliberate exception: requirement-based placement under the default
// PlacementPolicy::kPredictedCycles reads the devices' live in-flight
// load gauge, so WHICH device a queue lands on (and, on a heterogeneous
// pool, its launches' cycle counts) can depend on what had completed by
// create_queue time. Each launch is still exactly reproducible for the
// device it ran on. For bit-reproducible placement, gate the work so all
// queues are created before anything completes (the placement bench does
// this), name devices explicitly, or select PlacementPolicy::kLeastBound.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/isa/assembler.hpp"
#include "src/rt/device_pool.hpp"
#include "src/rt/event_graph.hpp"
#include "src/rt/fault.hpp"
#include "src/rt/scheduler.hpp"
#include "src/sim/cost_model.hpp"
#include "src/sim/gpu.hpp"
#include "src/util/annotated_mutex.hpp"
#include "src/util/status.hpp"
#include "src/util/thread_pool.hpp"

namespace gpup::rt {

/// Kernel launch geometry (flat 1-D NDRange, as the paper's benchmarks use).
struct NdRange {
  std::uint32_t global_size = 0;
  std::uint32_t wg_size = 256;
};

/// Argument pack builder: buffers decay to their device addresses. The
/// builder remembers which words were buffers, so the runtime knows
/// whether a launch is *relocatable* — a launch whose arguments are all
/// scalars can be retried on a different device (RetryPolicy::relocate),
/// while one naming device memory is pinned to the buffers' device.
class Args {
 public:
  Args& add(const Buffer& buffer) {
    words_.push_back(buffer.addr);
    buffers_.emplace_back(buffer.addr, buffer.bytes);
    return *this;
  }
  Args& add(std::uint32_t value) {
    words_.push_back(value);
    return *this;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& words() const { return words_; }
  [[nodiscard]] bool has_buffers() const { return !buffers_.empty(); }
  /// (addr, bytes) of every buffer argument in add() order. The batching
  /// layer's disjointness check reads these: launches enqueued through
  /// this builder declare exactly which device memory they may touch, so
  /// two of them fuse only when those spans cannot alias.
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint32_t>>& buffers() const {
    return buffers_;
  }

 private:
  std::vector<std::uint32_t> words_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> buffers_;
};

class Context;

/// Outcome of a bounded wait (Event::wait_for). kTimedOut means the event
/// was still non-terminal when the host timeout expired — the command is
/// untouched and may still complete later.
enum class WaitResult { kComplete, kFailed, kCancelled, kTimedOut };

[[nodiscard]] const char* to_string(WaitResult result);

/// Shared handle to an enqueued command. Copyable; the last handle keeps
/// the result alive. A default-constructed Event is null (`!valid()`).
class Event {
 public:
  Event() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] EventStatus status() const;

  /// Block until the command is terminal; true iff it completed.
  bool wait() const;

  /// Bounded wait: block until the command is terminal or `timeout` of
  /// host (wall-clock) time has passed. Never blocks forever — test
  /// suites use this so a runtime regression fails one test instead of
  /// hanging the CI job.
  [[nodiscard]] WaitResult wait_for(std::chrono::nanoseconds timeout) const;

  /// Cancel the command if it has not started running: claims the
  /// terminal state kCancelled, releases its device-load reservation and
  /// admission slot, and poisons dependents exactly like a failure (their
  /// error carries ErrorCode::kCancelled). Returns true iff THIS call
  /// cancelled it; false when the command already ran, is running, or was
  /// already terminal — cancellation never yanks work off a device.
  bool cancel() const;

  /// The failure (waits first). Empty message unless status is kFailed or
  /// kCancelled.
  [[nodiscard]] Error error() const;

  /// Kernel commands: cycle-accurate launch statistics (waits first).
  [[nodiscard]] const sim::LaunchStats& stats() const;

  /// Read commands: the words read back (waits first; empty on failure).
  [[nodiscard]] const std::vector<std::uint32_t>& data() const;

 private:
  friend class Context;
  friend class CommandQueue;
  friend class UserEvent;
  explicit Event(std::shared_ptr<detail::EventState> state) : state_(std::move(state)) {}

  std::shared_ptr<detail::EventState> state_;
};

/// Host-settled event (clCreateUserEvent): enqueue commands with it in
/// their wait-lists, then release them all at once with complete() — the
/// standard way to hand a batch to the scheduler atomically (the repro
/// sweep gates its cells this way) or to splice host-side work into the
/// dependency graph. Every user event must eventually be settled
/// (complete() or fail()); commands gated on one that never settles wait
/// forever, exactly like OpenCL.
class UserEvent {
 public:
  UserEvent() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] Event event() const { return Event(state_); }

  /// Settle as complete, releasing dependents. Idempotent; no-op after
  /// fail().
  void complete();
  /// Settle as failed: dependents fail with a dependency error.
  void fail(Error error);

 private:
  friend class Context;
  explicit UserEvent(std::shared_ptr<detail::EventState> state) : state_(std::move(state)) {}

  std::shared_ptr<detail::EventState> state_;
};

/// Optional description of the work a new queue intends to run, consumed
/// by completion-time placement (PlacementPolicy::kPredictedCycles): the
/// cost model predicts the hinted kernel's cycles on EVERY capability-
/// matching device, so a fast device with a backlog can still beat an
/// idle slow one. An empty program means "no hint" — placement then
/// scores on in-flight load alone.
struct WorkloadHint {
  isa::Program program;
  NdRange range;
  /// Expected number of such launches (scales the predicted cycles).
  int launches = 1;
};

/// Whether a queue's kernel launches may join fused batches.
enum class BatchMode {
  kAuto,  ///< policy default: on under kFifo / kFairShare, off otherwise
  kOn,
  kOff,
};

/// Continuous-batching knobs (docs/runtime.md "Continuous batching").
/// Compatible small launches popped back-to-back by the scheduling policy
/// are fused into one Gpu::try_launch_batch, amortizing per-launch fixed
/// host costs; per-launch results stay bit-identical to the unbatched
/// run, so `BatchMode::kOff` changes wall-clock only, never a result.
struct BatchConfig {
  BatchMode mode = BatchMode::kAuto;
  /// Batch-size cap: a fused launch never carries more segments than this.
  std::uint32_t max_launches = 32;
  /// Close the batch before its summed predict_stable cycles would exceed
  /// this — the `max_batch_wait` bound in simulated cycles; 0 = uncapped.
  /// Together with the policy-consultation rule (a command joins only if
  /// the policy would pick it next anyway) this bounds how long any tenant
  /// can sit behind one fused launch.
  std::uint64_t max_wait_cycles = 1u << 16;
  /// Only launches whose predict_stable cycles are at or below this join
  /// a batch: a bigger launch amortizes its own fixed costs already, so
  /// fusing it buys nothing and delays its neighbours.
  double small_launch_cycles = 8192.0;

  [[nodiscard]] static BatchConfig off() {
    BatchConfig config;
    config.mode = BatchMode::kOff;
    return config;
  }
  [[nodiscard]] static BatchConfig on() {
    BatchConfig config;
    config.mode = BatchMode::kOn;
    return config;
  }
};

/// How a new queue binds to the pool and presents itself to the
/// scheduling policy.
struct QueueOptions {
  QueueMode mode = QueueMode::kInOrder;
  /// kPriority policy: higher-priority queues' commands run first
  /// (deterministically aged so low priority cannot starve).
  int priority = 0;
  /// kFairShare policy: commands are accounted to this tenant.
  std::uint64_t tenant = 0;
  /// Explicit device index, or -1 to place by `require` under the
  /// context's PlacementPolicy (predicted completion time by default).
  int device = -1;
  DeviceRequirements require;
  /// What the queue plans to run — feeds kPredictedCycles placement.
  WorkloadHint hint;
  /// Default deadline for this queue's kernel launches, in simulated
  /// cycles (0 = none). Checked twice: at admission against the stable
  /// cost-model prediction (a launch predicted to bust its deadline fails
  /// immediately with kDeadlineExceeded, before occupying a device) and
  /// at completion against the measured cycles. A per-enqueue
  /// LaunchOptions deadline overrides this default.
  std::uint64_t deadline_cycles = 0;
  /// Continuous batching for this queue's kernel launches. kAuto inherits
  /// the context's BatchConfig wholesale (whose kAuto in turn means "on
  /// under kFifo / kFairShare"); any explicit mode makes this queue's own
  /// knobs authoritative.
  BatchConfig batch;
};

/// How a failed kernel launch is retried. Retries apply to *transient*
/// failures only — device traps (kTrap, injected or real) and device loss
/// (kDeviceLost); argument errors, OOM, and missed deadlines are
/// permanent. Attempt k sleeps `min(backoff * 2^(k-1), max_backoff)` of
/// host time first (wall-clock only: simulated results never depend on
/// the backoff); a non-zero `jitter_seed` scales that delay into
/// [delay/2, delay] by a pure hash of (seed, command seq, attempt), so a
/// retry storm de-synchronizes without losing reproducibility. When
/// `relocate` is set and the launch has no buffer arguments, attempt k
/// runs on device `(bound + k) % pool_size` — a deterministic walk, so
/// chaos outcomes stay reproducible. Every attempt's outcome feeds the
/// device's health window (quarantine).
struct RetryPolicy {
  int max_attempts = 1;  ///< total attempts (1 = no retry)
  std::chrono::microseconds backoff{0};
  /// Ceiling on the doubled backoff (0 = uncapped). Default one second:
  /// an unbounded doubling turns a transient blip into a multi-minute
  /// stall by attempt ~20.
  std::chrono::microseconds max_backoff{1'000'000};
  /// 0 = no jitter; otherwise seeds the deterministic delay scramble.
  std::uint64_t jitter_seed = 0;
  bool relocate = true;
};

/// Per-enqueue knobs for kernel launches.
struct LaunchOptions {
  /// Deadline in simulated cycles; 0 inherits the queue's default.
  std::uint64_t deadline_cycles = 0;
  RetryPolicy retry;
};

/// A heterogeneous Context: one simulated device per config (they need
/// not be identical), `threads` command workers, and the scheduling
/// policy. An empty `devices` vector gets one default-config device.
struct ContextOptions {
  std::vector<sim::GpuConfig> devices;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  SchedulerConfig scheduler;
  /// How place() picks among capability matches (see device_pool.hpp).
  PlacementPolicy placement = PlacementPolicy::kPredictedCycles;
  /// The cost model driving placement, fair-share kernel costs, and the
  /// per-(program, device) online refinement. Null = a fresh model; share
  /// one (e.g. calibrated via repro::calibrate_cost_model) across
  /// contexts to carry learned ratios between runs.
  std::shared_ptr<sim::CostModel> cost_model;
  /// Per-device circuit-breaker knobs (see HealthPolicy).
  HealthPolicy health;
  /// Per-tenant overload shedding, enforced at submission (off by
  /// default; see AdmissionConfig).
  AdmissionConfig admission;
  /// Deterministic fault injection: every launch/allocation consults the
  /// plan (null = no injection, zero overhead on the hot path). Shared so
  /// a chaos harness can drive several contexts from one plan.
  std::shared_ptr<const FaultPlan> fault_plan;
  /// Context-wide continuous-batching default; queues created with
  /// BatchMode::kAuto inherit this config (see QueueOptions::batch).
  BatchConfig batch;
};

namespace detail {

/// Everything the Context needs to (re-)run one kernel launch command,
/// captured at enqueue time. Kernel commands used to be opaque closures;
/// the batching layer needs to *inspect* pending commands — same program?
/// same device? disjoint buffers? — so their work is data now, hung off
/// the EventState (EventState::kernel). Immutable after submit.
struct KernelWork {
  isa::Program program;
  std::vector<std::uint32_t> args;  ///< argument words
  NdRange range;
  std::uint64_t program_key = 0;  ///< sim::KernelProfile identity (FNV of the words)
  sim::KernelProfile profile;
  double stable_cost = 0.0;  ///< predict_stable cycles on the bound device
  std::uint64_t deadline = 0;  ///< simulated-cycle deadline, 0 = none
  RetryPolicy retry;
  bool can_relocate = false;  ///< all-scalar args: retries may walk devices
  int device = 0;             ///< the queue's bound device
  /// (addr, bytes) of each buffer argument; trustworthy iff buffers_known.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> buffers;
  bool buffers_known = false;  ///< built via rt::Args (raw packs hide buffers)
  // ---- batching, resolved against the owning queue at enqueue ----------
  bool batchable = false;    ///< queue batching enabled && buffers_known
  bool amortizable = false;  ///< stable_cost <= the queue's small-launch bound
  std::uint32_t batch_max_launches = 0;
  std::uint64_t batch_max_wait_cycles = 0;
};

}  // namespace detail

/// Command queue bound to one device of the Context's pool. Lightweight
/// handle; copy freely. Create via Context::create_queue().
class CommandQueue {
 public:
  CommandQueue() = default;

  [[nodiscard]] bool valid() const { return context_ != nullptr; }
  [[nodiscard]] int device_index() const;
  [[nodiscard]] QueueMode mode() const;
  [[nodiscard]] int priority() const;
  [[nodiscard]] std::uint64_t tenant() const;

  /// Allocate device memory (synchronous, like clCreateBuffer). Fails with
  /// an OOM Error when the device's global memory is exhausted.
  [[nodiscard]] Result<Buffer> alloc(std::uint32_t bytes);
  [[nodiscard]] Result<Buffer> alloc_words(std::uint32_t words) {
    // The byte count must not wrap: alloc_words(1 << 30) is an OOM, not a
    // successful zero-byte buffer.
    if (words > 0xffffffffu / 4) {
      return Error{"allocation of " + std::to_string(words) + " words overflows the address space",
                   "rt.alloc"};
    }
    return alloc(words * 4);
  }

  /// Enqueue a host->device copy of `words` into `buffer`.
  Event enqueue_write(const Buffer& buffer, std::vector<std::uint32_t> words,
                      const std::vector<Event>& wait_list = {});

  /// Enqueue a kernel launch; the event's stats() carry the LaunchStats.
  Event enqueue_kernel(const isa::Program& program, std::vector<std::uint32_t> args,
                       const NdRange& range, const std::vector<Event>& wait_list = {});
  /// Launch with per-enqueue deadline / retry policy. Raw-word argument
  /// packs are assumed to reference device memory (no relocation); pass
  /// the Args builder to let all-scalar launches relocate on retry.
  Event enqueue_kernel(const isa::Program& program, std::vector<std::uint32_t> args,
                       const NdRange& range, const LaunchOptions& launch,
                       const std::vector<Event>& wait_list = {});
  Event enqueue_kernel(const isa::Program& program, const Args& args, const NdRange& range,
                       const LaunchOptions& launch, const std::vector<Event>& wait_list = {});

  /// Enqueue a device->host read of the whole buffer; the event's data()
  /// carries the words.
  Event enqueue_read(const Buffer& buffer, const std::vector<Event>& wait_list = {});

  /// Enqueue arbitrary host work as a command (clEnqueueNativeKernel): it
  /// obeys queue order / wait-lists and the scheduling policy like any
  /// other command, but does not occupy the device. The function must not
  /// block on events of this context (with few workers that can
  /// deadlock); returning an Error fails the event.
  Event enqueue_native(std::function<Status()> fn, const std::vector<Event>& wait_list = {});

  /// The device's affinity cache: upload `words` under a caller-chosen
  /// content key once per device, and hand every later caller on the same
  /// device the same buffer plus the upload event to wait on. Intended
  /// for read-only inputs shared by many queues (see rt::content_key for
  /// a ready-made hash). The words are only copied on a cache miss.
  struct SharedUpload {
    Buffer buffer;
    Event ready;
  };
  [[nodiscard]] Result<SharedUpload> upload_shared(std::uint64_t key,
                                                   std::span<const std::uint32_t> words);

  /// Block until every command enqueued so far is terminal; true iff all
  /// completed (a failure anywhere in the queue's history returns false).
  bool finish();

  /// Session-scoped cancel-all (the serving layer's disconnect hook):
  /// cancel every still-queued command of this queue. Running commands
  /// are untouched — they settle through the normal terminal paths — and
  /// each successful cancel releases its device-load reservation and
  /// admission slot exactly like Event::cancel(). Returns how many
  /// commands this call cancelled.
  int cancel_pending();

 private:
  friend class Context;
  CommandQueue(Context* context, std::shared_ptr<detail::QueueState> state)
      : context_(context), state_(std::move(state)) {}

  /// Shared body of the enqueue_kernel overloads. `relocatable` = the
  /// argument pack references no device memory, so retries may walk to
  /// other devices. `buffers_known` = the pack came through the Args
  /// builder, so `buffers` lists every device span the launch may touch
  /// (empty = all-scalar) — the precondition for batch eligibility.
  Event enqueue_kernel_impl(const isa::Program& program, std::vector<std::uint32_t> args,
                            const NdRange& range, const LaunchOptions& launch,
                            bool relocatable, bool buffers_known,
                            std::vector<std::pair<std::uint32_t, std::uint32_t>> buffers,
                            const std::vector<Event>& wait_list);

  Context* context_ = nullptr;
  std::shared_ptr<detail::QueueState> state_;
};

/// Owns the device pool, the scheduler, and the worker threads that
/// execute enqueued commands, so N client queues drive M (possibly
/// heterogeneous) devices concurrently.
///
/// The context also installs a shared ConcurrencyBudget (sized to its
/// worker pool) into every device's config unless the caller supplied one:
/// each command worker holds one budget token while it executes, and a
/// launch with `intra_launch_threads != 1` borrows the remaining tokens
/// for its intra-launch tick gang. Queue-level and intra-launch
/// parallelism therefore compose — a big launch on an otherwise idle
/// context spreads its CUs over the idle workers, while a fully loaded
/// context keeps every launch serial — without ever oversubscribing the
/// machine or changing any simulated result.
class Context {
 public:
  /// `device_count` simulated GPUs, all with the same config;
  /// `threads` == 0 picks the hardware concurrency. FIFO scheduling.
  explicit Context(const sim::GpuConfig& config, int device_count = 1, unsigned threads = 0);
  /// Full control: heterogeneous devices + scheduling policy.
  explicit Context(ContextOptions options);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Device 0's configuration (the constructor config for a homogeneous
  /// pool); per-device configs via device_config().
  [[nodiscard]] const sim::GpuConfig& config() const { return devices_.config(0); }
  [[nodiscard]] const sim::GpuConfig& device_config(int device) const {
    return devices_.config(device);
  }
  [[nodiscard]] int device_count() const { return devices_.size(); }
  [[nodiscard]] unsigned threads() const { return static_cast<unsigned>(workers_.size()); }
  [[nodiscard]] SchedulerPolicy scheduler_policy() const { return sched_config_.policy; }
  [[nodiscard]] PlacementPolicy placement_policy() const { return devices_.policy(); }
  /// The context's cost model (shared; never null) — placement scores,
  /// fair-share kernel costs, and online cycle-ratio refinement all read
  /// and write through it.
  [[nodiscard]] const std::shared_ptr<sim::CostModel>& cost_model() const {
    return cost_model_;
  }

  /// New in-order queue, bound round-robin over the device pool (or to an
  /// explicit device index).
  [[nodiscard]] CommandQueue create_queue();
  [[nodiscard]] CommandQueue create_queue(int device);
  /// Queue with explicit mode / priority / tenant / placement. Fails when
  /// `options.require` matches no pool device.
  [[nodiscard]] Result<CommandQueue> create_queue(const QueueOptions& options);

  /// Host-settled gate event (see UserEvent).
  [[nodiscard]] UserEvent create_user_event();

  /// Assemble kernel source (errors surface as Result, like clBuildProgram).
  [[nodiscard]] static Result<isa::Program> compile(const std::string& source) {
    return isa::Assembler::assemble(source);
  }

  /// Block until every command enqueued on any queue of this context is
  /// terminal; true iff all completed.
  bool finish();

  // ---- introspection (chaos / soak / serving instrumentation) ----------
  /// Point-in-time resource gauges plus cumulative failure counters.
  /// After finish() on an otherwise idle context every *gauge* must read
  /// zero pending work — the soak suite asserts exactly that to pin the
  /// no-leak guarantee. The `*_total` fields are monotonic counters (they
  /// never reset) feeding the serving layer's metrics endpoint.
  struct Gauges {
    std::uint64_t inflight_cycles = 0;    ///< sum of device load gauges
    std::uint64_t admission_pending = 0;  ///< unsettled admitted commands
    std::uint64_t unsettled_commands = 0; ///< graph nodes not yet terminal
    int live_queues = 0;                  ///< registered (unpruned) queues
    std::size_t affinity_cache_entries = 0;
    int devices_quarantined = 0;          ///< breakers currently open
    std::uint64_t shed_total = 0;         ///< admission rejections, cumulative
    std::uint64_t retries_total = 0;      ///< launch attempts beyond the first
    std::uint64_t deadline_misses_total = 0;  ///< kDeadlineExceeded failures
    // ---- continuous batching (docs/runtime.md) -------------------------
    std::uint64_t batches_inflight = 0;  ///< fused launches executing NOW (gauge)
    std::uint64_t batches_formed_total = 0;    ///< fused executions with >= 2 segments
    std::uint64_t launches_batched_total = 0;  ///< client launches those carried
    // Why each assembled batch stopped growing (one increment per close):
    std::uint64_t batch_close_drained_total = 0;       ///< ready set ran dry
    std::uint64_t batch_close_incompatible_total = 0;  ///< policy's next pick can't fuse
    std::uint64_t batch_close_unamortized_total = 0;   ///< next pick too big to pay off
    std::uint64_t batch_close_size_cap_total = 0;      ///< BatchConfig::max_launches
    std::uint64_t batch_close_cycle_cap_total = 0;     ///< BatchConfig::max_wait_cycles
  };
  /// One concurrency-safe snapshot of every gauge and counter; callable
  /// from any thread at any time (metrics scrapes race live traffic).
  [[nodiscard]] Gauges snapshot() GPUP_EXCLUDES(queues_mutex_);
  /// Back-compat alias for snapshot().
  [[nodiscard]] Gauges gauges() { return snapshot(); }
  [[nodiscard]] bool device_quarantined(int device) const {
    return devices_.quarantined(device);
  }
  [[nodiscard]] std::uint64_t admission_rejected() const { return admission_.rejected(); }
  [[nodiscard]] const std::shared_ptr<const FaultPlan>& fault_plan() const {
    return fault_plan_;
  }

 private:
  friend class CommandQueue;
  friend class UserEvent;
  friend class Event;  ///< cancel() drives the settle path directly

  /// Register a queue on a validated device.
  CommandQueue register_queue(int device, const QueueOptions& options)
      GPUP_REQUIRES(queues_mutex_);
  /// Release dead queues' device bindings: a queue whose last outside
  /// handle is gone and whose history is fully settled can never receive
  /// another command, so its bind no longer describes load. Lock order:
  /// queues_mutex_ before graph_mutex().
  void prune_dead_queues_locked() GPUP_REQUIRES(queues_mutex_, graph_mutex());
  /// Chain `run` behind the queue's mode-implied and wait-list
  /// dependencies; hand it to the scheduler once every dependency settled.
  /// `reserve_device` >= 0 records a load-gauge reservation of
  /// `reserved_cycles` (already applied by the caller) for settle to
  /// release.
  Event submit(const std::shared_ptr<detail::QueueState>& queue,
               std::function<Status(detail::EventState&)> run,
               const std::vector<Event>& wait_list, double cost = 0.0,
               int reserve_device = -1, std::uint64_t reserved_cycles = 0,
               std::shared_ptr<const detail::KernelWork> kernel = nullptr);
  /// Push a ready command to the policy and wake a worker.
  void schedule(std::shared_ptr<detail::EventState> state) GPUP_EXCLUDES(sched_mutex_);
  /// Settle a node and route every newly-ready dependent to its own
  /// context's scheduler (wait-lists may cross Context instances). Split
  /// in two so Event::cancel() can claim the settle atomically with its
  /// status check: settle_and_route = claim (first writer wins) +
  /// finish_settle (gauge release, graph settle, publish, route).
  static void settle_and_route(const std::shared_ptr<detail::EventState>& state,
                               Status result);
  static void finish_settle(const std::shared_ptr<detail::EventState>& state, Status result);
  /// Terminal-from-birth event that never touches the event graph — how
  /// admission control sheds work without failing the queue. Writes
  /// guarded fields of a state it just constructed and has not shared yet,
  /// so no lock can be needed — the one documented analysis opt-out.
  static Event make_detached_failed(Error error) GPUP_NO_THREAD_SAFETY_ANALYSIS;
  void worker_loop();
  void execute(const std::shared_ptr<detail::EventState>& state);

  // ---- continuous batching (docs/runtime.md "Continuous batching") -----
  /// Grow `batch` (seeded with one popped, batch-eligible kernel command)
  /// by repeatedly peeking the policy and popping while its next pick
  /// stays compatible with the leader. Only consecutive policy picks ever
  /// fuse — that IS the preemption guarantee: the moment the policy would
  /// rather run someone else (another tenant's turn under DRR, a higher
  /// priority), the batch closes and that someone runs next. Each member
  /// is popped individually, so kFairShare debits every segment's tenant
  /// its own predict_stable cost exactly as unbatched.
  void assemble_batch(std::vector<std::shared_ptr<detail::EventState>>& batch)
      GPUP_REQUIRES(sched_mutex_);
  /// Run an assembled batch: one fused Gpu::try_launch_batch for attempt 0
  /// of every runnable member (per-member dep-failures, cancellations,
  /// deadline admission and device-down windows are carved out first and
  /// handled exactly as execute() would), then per-member retry
  /// continuation, completion-deadline check and settle. A batch of one
  /// falls back to execute().
  void execute_batch(std::vector<std::shared_ptr<detail::EventState>>& batch)
      GPUP_EXCLUDES(sched_mutex_);
  /// Kernel command body (EventState::run for kernel commands): deadline
  /// admission + the attempt loop.
  Status run_kernel_command(detail::EventState& state);
  /// The retry loop of one kernel command. `first_outcome` non-null skips
  /// attempt 0's dispatch and consumes that outcome instead — the batched
  /// path's fused launch IS attempt 0, so retries behave identically
  /// whether the first attempt ran fused or standalone.
  Status kernel_attempt_loop(detail::EventState& state, const Status* first_outcome);
  /// One standalone launch attempt on device `dev`.
  [[nodiscard]] Status kernel_attempt(detail::EventState& state, int attempt, int dev);

  SchedulerConfig sched_config_;
  std::shared_ptr<ConcurrencyBudget> budget_;
  std::shared_ptr<sim::CostModel> cost_model_;
  std::shared_ptr<const FaultPlan> fault_plan_;
  DevicePool devices_;
  AdmissionController admission_;
  std::atomic<std::uint64_t> next_alloc_site_{0};  ///< alloc fault ordinals
  // Cumulative failure counters surfaced by snapshot(); relaxed atomics —
  // each is an independent monotonic count, never a synchronization edge.
  std::atomic<std::uint64_t> retries_total_{0};
  std::atomic<std::uint64_t> deadline_misses_total_{0};
  // Continuous-batching instrumentation (same relaxed-counter discipline;
  // batches_inflight_ is a gauge — ++ before the fused launch, -- after —
  // and must read zero on an idle context, which the soak suite asserts).
  std::atomic<std::uint64_t> batches_inflight_{0};
  std::atomic<std::uint64_t> batches_formed_total_{0};
  std::atomic<std::uint64_t> launches_batched_total_{0};
  std::atomic<std::uint64_t> batch_close_drained_total_{0};
  std::atomic<std::uint64_t> batch_close_incompatible_total_{0};
  std::atomic<std::uint64_t> batch_close_unamortized_total_{0};
  std::atomic<std::uint64_t> batch_close_size_cap_total_{0};
  std::atomic<std::uint64_t> batch_close_cycle_cap_total_{0};
  /// Context-wide batching default (ContextOptions::batch), consulted when
  /// a queue registers with BatchMode::kAuto. Immutable after construction.
  BatchConfig batch_config_;

  util::Mutex queues_mutex_;
  // Strong refs: finish() (and so the destructor) must see every queue
  // even after the caller dropped its CommandQueue handle. Queues that
  // can no longer be reached or grow are pruned (prune_dead_queues_locked)
  // so their device bindings are released; a pruned queue's failure stays
  // sticky via pruned_failed_.
  std::vector<std::shared_ptr<detail::QueueState>> queues_ GPUP_GUARDED_BY(queues_mutex_);
  bool pruned_failed_ GPUP_GUARDED_BY(queues_mutex_) = false;
  int next_queue_device_ GPUP_GUARDED_BY(queues_mutex_) = 0;
  int next_queue_id_ GPUP_GUARDED_BY(queues_mutex_) = 0;
  std::atomic<std::uint64_t> next_seq_{1};

  // Scheduler state: policies are single-threaded by contract, serialized
  // under sched_mutex_; workers sleep on sched_cv_.
  util::Mutex sched_mutex_;
  util::CondVar sched_cv_;
  std::unique_ptr<Scheduler> scheduler_ GPUP_GUARDED_BY(sched_mutex_)
      GPUP_PT_GUARDED_BY(sched_mutex_);
  bool stopping_ GPUP_GUARDED_BY(sched_mutex_) = false;
  std::vector<std::thread> workers_;  ///< joined in ~Context after finish()
};

}  // namespace gpup::rt
