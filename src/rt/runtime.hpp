// OpenCL-style asynchronous host runtime for the G-GPU.
//
// Mirrors the paper's software story: "on the software side, only standard
// OpenCL-API procedures are needed". The shapes match the OpenCL host API
// one-to-one:
//
//   rt::Context       — owns a pool of simulated devices and the worker
//                       threads that execute commands (cl_context + the
//                       driver's scheduler).
//   rt::CommandQueue  — in-order queue bound to one device of the pool;
//                       any number of queues run concurrently
//                       (cl_command_queue).
//   rt::Event         — handle to an enqueued command carrying its status
//                       (queued / running / complete / failed), the error
//                       on failure, per-launch sim::LaunchStats for kernel
//                       commands, and the returned words for read commands
//                       (cl_event).
//
// Commands within one queue execute in submission order; `wait_list`
// arguments add cross-queue dependencies (clEnqueue*'s event_wait_list).
// When a command fails, every command depending on it — including all
// later commands of the same queue — fails with a dependency error rather
// than running on garbage. Nothing in this API aborts the host process:
// all fallible paths (assembler errors, argument-count mismatch, buffer
// overflow, global-memory OOM, runtime traps) surface as Result values or
// failed events, so the runtime is safe to drive from untrusted callers.
//
// Determinism: each queue's results (buffer contents, LaunchStats, event
// order) depend only on the sequence of commands enqueued to it, never on
// the worker-thread count or on what other queues do — launches hold their
// device exclusively and queues own disjoint buffers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"
#include "src/util/status.hpp"
#include "src/util/thread_pool.hpp"

namespace gpup::rt {

/// A device-memory allocation. `device` names the pool device the buffer
/// lives on; commands reject buffers from a different device.
struct Buffer {
  std::uint32_t addr = 0;   ///< device byte address (as passed to kernels)
  std::uint32_t bytes = 0;
  int device = 0;           ///< owning device index within the Context

  [[nodiscard]] std::uint32_t words() const { return bytes / 4; }
};

/// Kernel launch geometry (flat 1-D NDRange, as the paper's benchmarks use).
struct NdRange {
  std::uint32_t global_size = 0;
  std::uint32_t wg_size = 256;
};

/// Argument pack builder: buffers decay to their device addresses.
class Args {
 public:
  Args& add(const Buffer& buffer) {
    words_.push_back(buffer.addr);
    return *this;
  }
  Args& add(std::uint32_t value) {
    words_.push_back(value);
    return *this;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& words() const { return words_; }

 private:
  std::vector<std::uint32_t> words_;
};

enum class EventStatus { kQueued, kRunning, kComplete, kFailed };

[[nodiscard]] const char* to_string(EventStatus status);

class Context;

namespace detail {
struct EventState;
struct QueueState;
}  // namespace detail

/// Shared handle to an enqueued command. Copyable; the last handle keeps
/// the result alive. A default-constructed Event is null (`!valid()`).
class Event {
 public:
  Event() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] EventStatus status() const;

  /// Block until the command is terminal; true iff it completed.
  bool wait() const;

  /// The failure (waits first). Empty message unless status is kFailed.
  [[nodiscard]] Error error() const;

  /// Kernel commands: cycle-accurate launch statistics (waits first).
  [[nodiscard]] const sim::LaunchStats& stats() const;

  /// Read commands: the words read back (waits first; empty on failure).
  [[nodiscard]] const std::vector<std::uint32_t>& data() const;

 private:
  friend class Context;
  friend class CommandQueue;
  explicit Event(std::shared_ptr<detail::EventState> state) : state_(std::move(state)) {}

  std::shared_ptr<detail::EventState> state_;
};

/// In-order command queue bound to one device of the Context's pool.
/// Lightweight handle; copy freely. Create via Context::create_queue().
class CommandQueue {
 public:
  CommandQueue() = default;

  [[nodiscard]] bool valid() const { return context_ != nullptr; }
  [[nodiscard]] int device_index() const;

  /// Allocate device memory (synchronous, like clCreateBuffer). Fails with
  /// an OOM Error when the device's global memory is exhausted.
  [[nodiscard]] Result<Buffer> alloc(std::uint32_t bytes);
  [[nodiscard]] Result<Buffer> alloc_words(std::uint32_t words) {
    // The byte count must not wrap: alloc_words(1 << 30) is an OOM, not a
    // successful zero-byte buffer.
    if (words > 0xffffffffu / 4) {
      return Error{"allocation of " + std::to_string(words) + " words overflows the address space",
                   "rt.alloc"};
    }
    return alloc(words * 4);
  }

  /// Enqueue a host->device copy of `words` into `buffer`.
  Event enqueue_write(const Buffer& buffer, std::vector<std::uint32_t> words,
                      const std::vector<Event>& wait_list = {});

  /// Enqueue a kernel launch; the event's stats() carry the LaunchStats.
  Event enqueue_kernel(const isa::Program& program, std::vector<std::uint32_t> args,
                       const NdRange& range, const std::vector<Event>& wait_list = {});

  /// Enqueue a device->host read of the whole buffer; the event's data()
  /// carries the words.
  Event enqueue_read(const Buffer& buffer, const std::vector<Event>& wait_list = {});

  /// Block until every command enqueued so far is terminal; true iff all
  /// completed (a failure anywhere in the queue's history returns false).
  bool finish();

 private:
  friend class Context;
  CommandQueue(Context* context, std::shared_ptr<detail::QueueState> state)
      : context_(context), state_(std::move(state)) {}

  Context* context_ = nullptr;
  std::shared_ptr<detail::QueueState> state_;
};

/// Owns a pool of simulated G-GPU devices plus the worker threads that
/// execute enqueued commands, so N client queues drive M devices
/// concurrently.
///
/// The context also installs a shared ConcurrencyBudget (sized to its
/// worker pool) into every device's config unless the caller supplied one:
/// each command worker holds one budget token while it executes, and a
/// launch with `intra_launch_threads != 1` borrows the remaining tokens
/// for its intra-launch tick gang. Queue-level and intra-launch
/// parallelism therefore compose — a big launch on an otherwise idle
/// context spreads its CUs over the idle workers, while a fully loaded
/// context keeps every launch serial — without ever oversubscribing the
/// machine or changing any simulated result.
class Context {
 public:
  /// `device_count` simulated GPUs, all with the same config;
  /// `threads` == 0 picks the hardware concurrency.
  explicit Context(const sim::GpuConfig& config, int device_count = 1, unsigned threads = 0);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] const sim::GpuConfig& config() const { return config_; }
  [[nodiscard]] int device_count() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] unsigned threads() const { return pool_.size(); }

  /// New in-order queue, bound round-robin over the device pool (or to an
  /// explicit device index).
  [[nodiscard]] CommandQueue create_queue();
  [[nodiscard]] CommandQueue create_queue(int device);

  /// Assemble kernel source (errors surface as Result, like clBuildProgram).
  [[nodiscard]] static Result<isa::Program> compile(const std::string& source) {
    return isa::Assembler::assemble(source);
  }

  /// Block until every command enqueued on any queue of this context is
  /// terminal; true iff all completed.
  bool finish();

 private:
  friend class CommandQueue;

  struct DeviceSlot {
    explicit DeviceSlot(const sim::GpuConfig& config) : gpu(config) {}
    sim::Gpu gpu;
    std::mutex exec_mutex;   ///< serializes launches/copies on this device
    std::mutex alloc_mutex;  ///< serializes synchronous allocation
  };

  /// Chain `run` behind the queue's previous command plus `wait_list`,
  /// dispatching to the pool once every dependency settled.
  Event submit(const std::shared_ptr<detail::QueueState>& queue,
               std::function<Status(detail::EventState&)> run,
               const std::vector<Event>& wait_list);
  void dispatch(std::shared_ptr<detail::EventState> state);
  void execute(const std::shared_ptr<detail::EventState>& state);
  void finalize(const std::shared_ptr<detail::EventState>& state, Status result);

  sim::GpuConfig config_;
  std::shared_ptr<ConcurrencyBudget> budget_;  ///< == config_.concurrency_budget
  std::vector<std::unique_ptr<DeviceSlot>> devices_;
  std::mutex queues_mutex_;
  // Strong refs: finish() (and so the destructor) must see every queue's
  // tail even after the caller dropped its CommandQueue handle.
  std::vector<std::shared_ptr<detail::QueueState>> queues_;
  int next_queue_device_ = 0;
  ThreadPool pool_;  ///< last member: destroyed (drained) before the devices
};

}  // namespace gpup::rt
