// Floorplan viewer: physically synthesise any G-GPU version and export the
// layout as SVG + DEF-like text (the open-source stand-in for the paper's
// GDSII screenshots).
//
//   $ ./floorplan_viewer [cu_count] [freq_mhz] [out.svg]
//   $ ./floorplan_viewer 8 667 fig4.svg
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/fp/layout_writer.hpp"
#include "src/plan/planner.hpp"
#include "src/plan/report.hpp"

int main(int argc, char** argv) {
  const int cu_count = (argc > 1) ? std::atoi(argv[1]) : 8;
  const double freq = (argc > 2) ? std::atof(argv[2]) : 667.0;
  const std::string out_file = (argc > 3) ? argv[3] : "floorplan.svg";
  if (cu_count < 1 || cu_count > 8 || freq <= 0) {
    std::printf("usage: %s [cu_count 1..8] [freq_mhz] [out.svg]\n", argv[0]);
    return 1;
  }

  const auto technology = gpup::tech::Technology::generic65();
  const gpup::plan::Planner planner(&technology);
  const gpup::plan::Spec spec{.cu_count = cu_count, .freq_mhz = freq};

  const auto logic = planner.logic_synthesis(spec);
  const auto physical = planner.physical_synthesis(logic);

  std::printf("%s: die %.0f x %.0f um (%.2f mm^2), %zu macros placed\n", spec.name().c_str(),
              physical.floorplan.die_w_um, physical.floorplan.die_h_um,
              physical.floorplan.die_area_mm2(), physical.floorplan.macros.size());
  std::printf("timing after layout: %.0f MHz achieved", physical.achieved_mhz);
  if (!physical.meets_target) {
    std::printf(" (misses the %.0f MHz target; best standard point %.0f MHz)",
                spec.freq_mhz, physical.recommended_mhz);
  }
  std::printf("\n\nworst paths (wire-annotated):\n%s\n",
              gpup::plan::timing_table(physical.timing, 5).to_console().c_str());

  std::printf("CU -> memory-controller routed distances (mm):");
  for (double d : physical.floorplan.cu_distance_mm) std::printf(" %.2f", d);
  std::printf("\n");

  std::ofstream svg(out_file);
  svg << gpup::fp::LayoutWriter::to_svg(physical.floorplan, spec.name());
  std::ofstream text(out_file + ".def.txt");
  text << gpup::fp::LayoutWriter::to_text(physical.floorplan, spec.name());
  std::printf("\nwrote %s and %s.def.txt\n", out_file.c_str(), out_file.c_str());
  return 0;
}
