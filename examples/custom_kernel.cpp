// Writing a custom SIMT kernel: a 16-bin histogram using the parts of the
// ISA the seven paper benchmarks don't touch — the CU-local scratchpad
// (lwl/swl), work-group barriers, strided loops, and the disassembler.
//
// SIMT-safe pattern: lanes of one wavefront execute in lockstep, so a
// shared read-modify-write would lose updates. Each lane therefore owns a
// private 16-bin region in LRAM; after a barrier, lane 0 reduces the 64
// regions and writes the result to global memory.
#include <cstdio>
#include <vector>

#include "src/rt/runtime.hpp"
#include "src/util/rng.hpp"

int main() {
  const char* source = R"(.kernel histogram16
  ; params: 0=n, 1=in, 2=out (16 bins)
  lid    r2
  param  r4, 0          ; n
  slli   r20, r2, 6     ; my LRAM region: lid * 16 bins * 4 bytes

  ; clear my 16 bins
  addi   r5, r0, 0
clear_loop:
  slli   r6, r5, 2
  add    r6, r6, r20
  swl    r0, 0(r6)
  addi   r5, r5, 1
  slti   r7, r5, 16
  bne    r7, r0, clear_loop
  bar

  ; count elements lid, lid+64, lid+128, ... into my private bins
  or     r8, r2, r0
  wgsize r9
count_loop:
  bgeu   r8, r4, count_done
  slli   r10, r8, 2
  param  r11, 1
  add    r11, r11, r10
  lw     r12, 0(r11)
  andi   r12, r12, 15
  slli   r12, r12, 2
  add    r12, r12, r20
  lwl    r13, 0(r12)
  addi   r13, r13, 1
  swl    r13, 0(r12)
  add    r8, r8, r9
  jmp    count_loop
count_done:
  bar

  ; lane 0 reduces all 64 regions into the global bins
  bne    r2, r0, done
  addi   r5, r0, 0      ; bin
reduce_outer:
  addi   r14, r0, 0     ; lane
  addi   r15, r0, 0     ; sum
reduce_inner:
  slli   r16, r14, 6
  slli   r17, r5, 2
  add    r16, r16, r17
  lwl    r18, 0(r16)
  add    r15, r15, r18
  addi   r14, r14, 1
  slti   r19, r14, 64
  bne    r19, r0, reduce_inner
  param  r21, 2
  slli   r17, r5, 2
  add    r21, r21, r17
  sw     r15, 0(r21)
  addi   r5, r5, 1
  slti   r19, r5, 16
  bne    r19, r0, reduce_outer
done:
  ret
)";

  const auto program = gpup::rt::Context::compile(source);
  if (!program.ok()) {
    std::printf("assembly error: %s\n", program.error().to_string().c_str());
    return 1;
  }
  std::printf("=== disassembly ===\n%s\n", program.value().disassemble().c_str());

  gpup::rt::Context context(gpup::sim::GpuConfig{});
  auto queue = context.create_queue();

  const std::uint32_t n = 4096;
  std::vector<std::uint32_t> input(n);
  gpup::Rng rng(42);
  for (auto& v : input) v = rng.next_u32();

  const auto buf_in = queue.alloc_words(n);
  const auto buf_out = queue.alloc_words(16);
  if (!buf_in.ok() || !buf_out.ok()) {
    std::printf("device allocation failed\n");
    return 1;
  }
  queue.enqueue_write(buf_in.value(), input);

  // One 64-item work-group; every lane strides over n/64 elements. The
  // in-order queue sequences write -> launch -> read automatically.
  const auto args = gpup::rt::Args().add(n).add(buf_in.value()).add(buf_out.value()).words();
  const auto kernel = queue.enqueue_kernel(program.value(), args, {64, 64});
  const auto read = queue.enqueue_read(buf_out.value());
  if (!read.wait()) {
    std::printf("launch failed: %s\n", read.error().to_string().c_str());
    return 1;
  }
  const auto& stats = kernel.stats();
  const auto& bins = read.data();
  std::vector<std::uint32_t> expected(16, 0);
  for (std::uint32_t v : input) ++expected[v & 15];

  bool ok = true;
  std::printf("bin:      ");
  for (int b = 0; b < 16; ++b) std::printf("%5d", b);
  std::printf("\ncounted:  ");
  for (int b = 0; b < 16; ++b) std::printf("%5u", bins[b]);
  std::printf("\nexpected: ");
  for (int b = 0; b < 16; ++b) {
    std::printf("%5u", expected[b]);
    ok = ok && bins[b] == expected[b];
  }
  std::printf("\n\n%s in %llu cycles (%llu barrier releases, %llu divergent issues)\n",
              ok ? "CORRECT" : "WRONG", static_cast<unsigned long long>(stats.cycles),
              static_cast<unsigned long long>(stats.counters.barriers),
              static_cast<unsigned long long>(stats.counters.divergent_issues));
  return ok ? 0 : 1;
}
