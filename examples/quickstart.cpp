// Quickstart: generate a G-GPU with GPUPlanner, then run your first kernel
// on the cycle-accurate simulator.
//
//   $ ./quickstart
//
// Covers the two halves of the project in ~80 lines:
//   1. GPUPlanner — pick a spec, estimate, synthesise, inspect PPA;
//   2. the simulator + OpenCL-style asynchronous runtime — compile a
//      kernel, enqueue buffer writes / the launch / the read-back on a
//      command queue, wait on the read event, inspect the counters.
#include <cstdio>

#include "src/plan/planner.hpp"
#include "src/plan/report.hpp"
#include "src/rt/runtime.hpp"

int main() {
  // ------------------------------------------------------------------
  // 1. Generate the accelerator (paper Fig. 2 flow).
  // ------------------------------------------------------------------
  const auto technology = gpup::tech::Technology::generic65();
  const gpup::plan::Planner planner(&technology);

  const gpup::plan::Spec spec{.cu_count = 2, .freq_mhz = 667.0};
  const auto estimate = planner.estimate(spec);
  std::printf("First-order estimate for %s: %.2f mm^2, %.2f W (%s)\n",
              spec.name().c_str(), estimate.area_mm2, estimate.total_power_w,
              estimate.comment.c_str());

  const auto logic = planner.logic_synthesis(spec);
  std::printf("Logic synthesis: fmax %.0f MHz, %llu memory macros, %.2f mm^2\n",
              logic.timing.fmax_mhz(),
              static_cast<unsigned long long>(logic.stats.memory_count),
              logic.stats.total_area_mm2());
  std::printf("Optimisation map applied:\n%s\n",
              gpup::plan::map_table(logic.applied).to_console().c_str());

  const auto physical = planner.physical_synthesis(logic);
  std::printf("Physical synthesis: die %.0f x %.0f um, closes at %.0f MHz\n\n",
              physical.floorplan.die_w_um, physical.floorplan.die_h_um,
              physical.achieved_mhz);

  // ------------------------------------------------------------------
  // 2. Run a kernel on the matching simulator configuration.
  // ------------------------------------------------------------------
  gpup::sim::GpuConfig config;
  config.cu_count = spec.cu_count;
  gpup::rt::Context context(config);
  auto queue = context.create_queue();

  const char* kernel_source = R"(.kernel saxpy_like
  tid   r1
  param r2, 0          ; n
  bgeu  r1, r2, done
  slli  r3, r1, 2
  param r4, 1          ; x
  add   r4, r4, r3
  lw    r5, 0(r4)
  param r6, 4          ; scalar a
  mul   r5, r5, r6
  param r7, 2          ; y
  add   r7, r7, r3
  lw    r8, 0(r7)
  add   r5, r5, r8
  param r9, 3          ; out
  add   r9, r9, r3
  sw    r5, 0(r9)
done:
  ret
)";
  const auto program = gpup::rt::Context::compile(kernel_source);
  if (!program.ok()) {
    std::printf("assembly error: %s\n", program.error().to_string().c_str());
    return 1;
  }

  const std::uint32_t n = 4096;
  std::vector<std::uint32_t> x(n), y(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    x[i] = i;
    y[i] = 1000 + i;
  }
  const auto buf_x = queue.alloc_words(n);
  const auto buf_y = queue.alloc_words(n);
  const auto buf_out = queue.alloc_words(n);
  if (!buf_x.ok() || !buf_y.ok() || !buf_out.ok()) {
    std::printf("device allocation failed\n");
    return 1;
  }
  queue.enqueue_write(buf_x.value(), x);
  queue.enqueue_write(buf_y.value(), y);

  // The queue is in-order: the launch waits for the writes, the read for
  // the launch. Everything after this line runs on the context's workers.
  const std::uint32_t a = 3;
  const auto args = gpup::rt::Args()
                        .add(n).add(buf_x.value()).add(buf_y.value()).add(buf_out.value())
                        .add(a).words();
  const auto kernel = queue.enqueue_kernel(program.value(), args, {n, 256});
  const auto read = queue.enqueue_read(buf_out.value());
  if (!read.wait()) {
    std::printf("launch failed: %s\n", read.error().to_string().c_str());
    return 1;
  }

  const auto& out = read.data();
  const auto& stats = kernel.stats();
  std::uint32_t errors = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (out[i] != a * x[i] + y[i]) ++errors;
  }
  std::printf("saxpy over %u items: %llu cycles (%.2f items/cycle), cache hit rate %.2f, "
              "%u errors\n",
              n, static_cast<unsigned long long>(stats.cycles),
              static_cast<double>(n) / stats.cycles, stats.counters.cache_hit_rate(), errors);
  std::printf("At %.0f MHz that is %.1f us of accelerator time.\n", spec.freq_mhz,
              stats.cycles / spec.freq_mhz);
  return errors == 0 ? 0 : 1;
}
