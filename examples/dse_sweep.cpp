// Design-space exploration: the paper's GPUPlanner workflow (Fig. 2) from
// specification to the full 12-version Table I sweep, including the
// "dynamic spreadsheet" optimisation map and the PPA check against a
// user budget.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "src/plan/planner.hpp"
#include "src/plan/report.hpp"
#include "src/util/thread_pool.hpp"

int main() {
  const auto technology = gpup::tech::Technology::generic65();
  const gpup::plan::Planner planner(&technology);

  // --- step 1: first-order estimation across the whole space -----------
  std::printf("=== First-order estimates (pre-synthesis) ===\n");
  for (int cu : {1, 2, 4, 8}) {
    for (double freq : {500.0, 590.0, 667.0}) {
      const gpup::plan::Spec spec{.cu_count = cu, .freq_mhz = freq};
      const auto estimate = planner.estimate(spec);
      std::printf("  %-10s ~%.1f mm^2, ~%.1f W  %s\n", spec.name().c_str(),
                  estimate.area_mm2, estimate.total_power_w,
                  estimate.feasible ? "" : "(infeasible)");
    }
  }

  // --- step 2: the optimisation map for one target ----------------------
  auto working = gpup::gen::generate_ggpu(gpup::gen::GgpuArchSpec::baseline(1), technology);
  const auto map590 = planner.derive_map(working, 590.0);
  std::printf("\n=== Optimisation map: baseline -> 590 MHz ===\n%s",
              gpup::plan::map_table(map590).to_console().c_str());
  const auto map667 = planner.derive_map(working, 667.0);
  std::printf("\n=== Optimisation map: 590 -> 667 MHz (incremental) ===\n%s",
              gpup::plan::map_table(map667).to_console().c_str());

  // --- step 3: the push-button 12-version sweep (Table I) ---------------
  // Each version is an independent synthesis run, so the sweep scales
  // with host cores; time it both ways to make the speedup visible.
  using clock = std::chrono::steady_clock;
  const auto serial_start = clock::now();
  const auto versions = planner.exercise({1, 2, 4, 8}, {500.0, 590.0, 667.0},
                                         /*threads=*/1);
  const double serial_s = std::chrono::duration<double>(clock::now() - serial_start).count();

  const auto parallel_start = clock::now();
  const auto parallel_versions = planner.exercise({1, 2, 4, 8}, {500.0, 590.0, 667.0});
  const double parallel_s =
      std::chrono::duration<double>(clock::now() - parallel_start).count();

  const std::string table1 = gpup::plan::table1(versions).to_console();
  const bool identical = table1 == gpup::plan::table1(parallel_versions).to_console();
  if (!identical) std::printf("\nWARNING: serial and parallel sweep results DIVERGE\n");

  std::printf("\n=== Logic-synthesis results for all 12 versions ===\n%s", table1.c_str());
  const unsigned used_threads =
      std::min<unsigned>(gpup::ThreadPool::default_threads(), 12u);  // 12 versions
  std::printf(
      "\nsweep wall-clock: serial %.3f s, parallel %.3f s on %u threads "
      "(%.2fx speedup)\n",
      serial_s, parallel_s, used_threads,
      parallel_s > 0 ? serial_s / parallel_s : 0.0);

  // --- step 4: PPA check against a user budget --------------------------
  gpup::plan::Spec budgeted{.cu_count = 8, .freq_mhz = 667.0};
  budgeted.max_area_mm2 = 20.0;  // deliberately too tight
  const auto checked = planner.logic_synthesis(budgeted);
  std::printf("\n=== PPA check: %s with a 20 mm^2 budget ===\n", budgeted.name().c_str());
  if (checked.warnings.empty()) {
    std::printf("  within budget\n");
  } else {
    for (const auto& warning : checked.warnings) std::printf("  warning: %s\n", warning.c_str());
    std::printf("  -> the designer should adapt the spec and restart (paper Fig. 2 loop)\n");
  }
  return 0;
}
