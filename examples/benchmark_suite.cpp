// Run the paper's seven-benchmark suite on any simulated G-GPU
// configuration and compare with the RISC-V baseline — a miniature,
// configurable version of the Table III / Fig. 5 experiment.
//
//   $ ./benchmark_suite [cu_count] [scale]
//   $ ./benchmark_suite 8 4        # 8 CUs, inputs divided by 4
#include <cstdio>
#include <cstdlib>

#include "src/kern/benchmark.hpp"

int main(int argc, char** argv) {
  const int cu_count = (argc > 1) ? std::atoi(argv[1]) : 4;
  const std::uint32_t scale = (argc > 2) ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1;
  if (cu_count < 1 || cu_count > 8 || scale < 1) {
    std::printf("usage: %s [cu_count 1..8] [input scale >= 1]\n", argv[0]);
    return 1;
  }

  gpup::sim::GpuConfig config;
  config.cu_count = cu_count;

  std::printf("G-GPU %d CU(s) vs CV32E40P-class RISC-V (naive OpenCL port)\n\n", cu_count);
  std::printf("| kernel        | G-GPU cycles | RISC-V cycles | input ratio | speed-up |\n");
  std::printf("|---------------|--------------|---------------|-------------|----------|\n");

  bool all_valid = true;
  for (const auto* benchmark : gpup::kern::all_benchmarks()) {
    std::uint32_t gpu_size = std::max(64u, benchmark->gpu_input() / scale);
    std::uint32_t riscv_size = std::max(32u, benchmark->riscv_input() / scale);
    if (benchmark->name() == "mat_mul") {
      gpu_size = std::max(64u, gpu_size & ~31u);
      riscv_size = std::max(32u, riscv_size & ~31u);
    }

    const auto gpu = gpup::kern::run_gpu(*benchmark, config, gpu_size);
    const auto riscv = gpup::kern::run_riscv(*benchmark, riscv_size, /*optimized=*/false);
    all_valid = all_valid && gpu.valid && riscv.valid;

    const double ratio = static_cast<double>(gpu_size) / riscv_size;
    const double speedup =
        static_cast<double>(riscv.stats.cycles) * ratio / static_cast<double>(gpu.stats.cycles);
    std::printf("| %-13s | %-12llu | %-13llu | %-11.0f | %-8.1f |\n",
                benchmark->name().c_str(), static_cast<unsigned long long>(gpu.stats.cycles),
                static_cast<unsigned long long>(riscv.stats.cycles), ratio, speedup);
  }
  std::printf("\nresults %s\n", all_valid ? "validated against host golden references"
                                          : "INVALID — simulator bug");
  return all_valid ? 0 : 1;
}
