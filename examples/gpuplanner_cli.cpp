// gpuplanner_cli — the push-button tool of the paper's Fig. 2: from a
// specification on the command line to a full logic + physical synthesis
// run with reports and a layout on disk.
//
//   usage: gpuplanner_cli [options]
//     --cus N            compute units, 1..8           (default 4)
//     --freq MHZ         target frequency              (default 667)
//     --tech 65|45       technology node               (default 65)
//     --replicate-mc     duplicate the memory controller (future work)
//     --max-area MM2     area budget for the PPA check
//     --out FILE.svg     layout output                 (default layout.svg)
//     --map              print the optimisation map and the delay sheet
//
//   examples:
//     gpuplanner_cli --cus 8 --freq 667            # hits the paper's wall
//     gpuplanner_cli --cus 8 --freq 667 --replicate-mc
//     gpuplanner_cli --cus 2 --freq 590 --map
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/fp/layout_writer.hpp"
#include "src/plan/planner.hpp"
#include "src/plan/report.hpp"

int main(int argc, char** argv) {
  gpup::plan::Spec spec{4, 667.0, {}, {}, false};
  std::string tech_name = "65";
  std::string out_file = "layout.svg";
  bool print_map = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--cus") spec.cu_count = std::atoi(next());
    else if (arg == "--freq") spec.freq_mhz = std::atof(next());
    else if (arg == "--tech") tech_name = next();
    else if (arg == "--replicate-mc") spec.replicate_memctrl = true;
    else if (arg == "--max-area") spec.max_area_mm2 = std::atof(next());
    else if (arg == "--out") out_file = next();
    else if (arg == "--map") print_map = true;
    else {
      std::fprintf(stderr, "unknown option '%s' (see the header comment)\n", arg.c_str());
      return 1;
    }
  }
  if (spec.cu_count < 1 || spec.cu_count > 8 || spec.freq_mhz <= 0) {
    std::fprintf(stderr, "invalid spec: %d CUs @ %.0f MHz\n", spec.cu_count, spec.freq_mhz);
    return 1;
  }

  const auto technology = (tech_name == "45") ? gpup::tech::Technology::generic45()
                                              : gpup::tech::Technology::generic65();
  const gpup::plan::Planner planner(&technology);

  std::printf("GPUPlanner — %s on %s\n\n", spec.name().c_str(), technology.name.c_str());

  // Fig. 2 stage 1: first-order estimation.
  const auto estimate = planner.estimate(spec);
  std::printf("[1/4] first-order estimate: %.2f mm^2, %.2f W — %s\n", estimate.area_mm2,
              estimate.total_power_w, estimate.comment.c_str());
  if (!estimate.feasible) {
    std::printf("      specification infeasible; adapt it and retry (Fig. 2 loop)\n");
    return 2;
  }

  // Stage 2: logic synthesis with the optimisation map.
  const auto logic = planner.logic_synthesis(spec);
  std::printf("[2/4] logic synthesis: fmax %.0f MHz, %.2f mm^2 (%.2f memory), "
              "%llu FF / %llu gates / %llu macros, %.2f W\n",
              logic.timing.fmax_mhz(), logic.stats.total_area_mm2(),
              logic.stats.memory_area_mm2(),
              static_cast<unsigned long long>(logic.stats.ff_count),
              static_cast<unsigned long long>(logic.stats.gate_count),
              static_cast<unsigned long long>(logic.stats.memory_count),
              logic.power.total_w());
  for (const auto& warning : logic.warnings) std::printf("      warning: %s\n", warning.c_str());
  if (print_map) {
    std::printf("\noptimisation map (%zu actions):\n%s\n", logic.applied.size(),
                gpup::plan::map_table(logic.applied).to_console().c_str());
    const auto baseline = gpup::gen::generate_ggpu(
        gpup::gen::GgpuArchSpec::baseline(spec.cu_count), technology);
    std::printf("memory delay sheet (the paper's 'dynamic spreadsheet' input):\n%s\n",
                gpup::plan::delay_sheet(baseline).to_console().c_str());
  }

  // Stage 3: physical synthesis.
  const auto physical = planner.physical_synthesis(logic);
  std::printf("[3/4] physical synthesis: die %.0f x %.0f um, closes at %.0f MHz%s\n",
              physical.floorplan.die_w_um, physical.floorplan.die_h_um,
              physical.achieved_mhz,
              physical.meets_target ? "" : " — TARGET MISSED");
  for (const auto& note : physical.notes) std::printf("      note: %s\n", note.c_str());
  std::printf("      routed wire: %.1f Mum (M2..M7)\n", physical.routing.total_um() / 1e6);

  // Stage 4: sign-off + export.
  std::ofstream svg(out_file);
  svg << gpup::fp::LayoutWriter::to_svg(physical.floorplan, spec.name());
  std::ofstream def(out_file + ".def.txt");
  def << gpup::fp::LayoutWriter::to_text(physical.floorplan, spec.name());
  std::printf("[4/4] tapeout-ready layout written to %s (+ .def.txt)\n", out_file.c_str());

  return physical.meets_target && logic.warnings.empty() ? 0 : 3;
}
