// Tour of the runtime's scheduler core: a heterogeneous device pool
// (1-CU, 4-CU, and divider-equipped members side by side), capability
// placement, an out-of-order queue ordered by explicit events, and the
// priority policy serving a high-priority tenant first.
//
//   $ ./scheduler_tour
#include <cstdio>
#include <vector>

#include "src/rt/runtime.hpp"

namespace {

constexpr const char* kScaleSource = R"(.kernel scale
  tid   r1
  param r2, 0          ; n
  bgeu  r1, r2, done
  slli  r3, r1, 2
  param r4, 1          ; buf
  add   r4, r4, r3
  lw    r5, 0(r4)
  param r6, 2          ; factor
  mul   r5, r5, r6
  sw    r5, 0(r4)
done:
  ret
)";

}  // namespace

int main() {
  using namespace gpup;

  // --- a heterogeneous pool: three different G-GPU configurations -------
  sim::GpuConfig small;
  small.cu_count = 1;
  sim::GpuConfig big;
  big.cu_count = 4;
  big.cache_bytes = 32 * 1024;
  sim::GpuConfig divider;
  divider.cu_count = 2;
  divider.hw_divider = true;

  rt::ContextOptions options;
  options.devices = {small, big, divider};
  options.scheduler.policy = rt::SchedulerPolicy::kPriority;
  rt::Context context(options);

  std::printf("pool:\n");
  for (int d = 0; d < context.device_count(); ++d) {
    std::printf("  device %d: %s\n", d, context.device_config(d).summary().c_str());
  }

  // --- capability placement: ask for what the kernel needs ---------------
  rt::QueueOptions wants_big;
  wants_big.require.min_cu_count = 4;
  wants_big.priority = 8;  // high-priority tenant
  auto fast = context.create_queue(wants_big);
  rt::QueueOptions any;
  auto slow = context.create_queue(any);
  if (!fast.ok() || !slow.ok()) {
    std::printf("placement failed: %s\n",
                (!fast.ok() ? fast : slow).error().to_string().c_str());
    return 1;
  }
  std::printf("high-priority queue placed on device %d, background queue on device %d\n",
              fast.value().device_index(), slow.value().device_index());

  // --- an out-of-order queue: only events order the commands -------------
  rt::QueueOptions ooo;
  ooo.mode = rt::QueueMode::kOutOfOrder;
  ooo.device = fast.value().device_index();
  auto queue_result = context.create_queue(ooo);
  if (!queue_result.ok()) return 1;
  rt::CommandQueue queue = queue_result.value();

  const auto program = rt::Context::compile(kScaleSource);
  if (!program.ok()) {
    std::printf("compile failed: %s\n", program.error().to_string().c_str());
    return 1;
  }

  const std::uint32_t n = 4096;
  const auto buffer = queue.alloc_words(n);
  if (!buffer.ok()) return 1;
  const auto write = queue.enqueue_write(buffer.value(), std::vector<std::uint32_t>(n, 1));
  // x2 then x3: the explicit chain is the only ordering on this queue.
  const auto x2 = queue.enqueue_kernel(
      program.value(), rt::Args().add(n).add(buffer.value()).add(2u).words(), {n, 256},
      {write});
  const auto x3 = queue.enqueue_kernel(
      program.value(), rt::Args().add(n).add(buffer.value()).add(3u).words(), {n, 256}, {x2});
  const auto read = queue.enqueue_read(buffer.value(), {x3});
  if (!read.wait()) {
    std::printf("out-of-order chain failed: %s\n", read.error().to_string().c_str());
    return 1;
  }
  std::printf("out-of-order chain: 1 * 2 * 3 = %u (x2 took %llu cycles on %s)\n",
              read.data()[0], static_cast<unsigned long long>(x2.stats().cycles),
              context.device_config(queue.device_index()).summary().c_str());

  if (!context.finish()) return 1;
  std::printf("done: scheduler policy \"%s\", %u workers, %d devices\n",
              rt::to_string(context.scheduler_policy()), context.threads(),
              context.device_count());
  return 0;
}
