// Regenerates Table I: characteristics of the 12 G-GPU solutions after
// logic synthesis ({1,2,4,8} CUs x {500,590,667} MHz), side by side with
// the paper's published rows. Then times the synthesis flow itself with
// google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/plan/planner.hpp"
#include "src/plan/report.hpp"

namespace {

const gpup::tech::Technology& technology() {
  static const auto tech = gpup::tech::Technology::generic65();
  return tech;
}

void print_table1() {
  const gpup::plan::Planner planner(&technology());
  const auto versions = planner.exercise({1, 2, 4, 8}, {500.0, 590.0, 667.0});
  std::printf("=== Table I: 12 G-GPU solutions after logic synthesis (this repo) ===\n%s\n",
              gpup::plan::table1(versions).to_console().c_str());

  std::printf(
      "=== Table I (paper, for comparison) ===\n"
      "| #CU & Freq. | Area | MemArea | #FF    | #Comb  | #Mem | Leak(mW) | Dyn(W) | Tot(W) |\n"
      "| 1@500MHz    | 4.19 | 2.68    | 119778 | 127826 | 51   | 4.62     | 1.97   | 2.055  |\n"
      "| 2@500MHz    | 7.45 | 4.64    | 229171 | 214243 | 93   | 8.54     | 3.63   | 3.77   |\n"
      "| 4@500MHz    | 13.84| 8.56    | 437318 | 387246 | 177  | 16.07    | 6.88   | 7.14   |\n"
      "| 8@500MHz    | 26.51| 16.39   | 852094 | 714256 | 345  | 30.79    | 13.33  | 13.86  |\n"
      "| 1@590MHz    | 4.66 | 3.15    | 120035 | 128894 | 68   | 4.73     | 2.57   | 2.66   |\n"
      "| 2@590MHz    | 8.16 | 5.34    | 229172 | 221946 | 120  | 8.73     | 4.63   | 4.81   |\n"
      "| 4@590MHz    | 15.03| 9.72    | 436807 | 397995 | 224  | 16.41    | 8.70   | 9.02   |\n"
      "| 8@590MHz    | 28.65| 18.49   | 850559 | 737232 | 432  | 31.25    | 16.81  | 17.40  |\n"
      "| 1@667MHz    | 4.77 | 3.26    | 120035 | 130802 | 71   | 4.65     | 2.62   | 2.72   |\n"
      "| 2@667MHz    | 8.27 | 5.45    | 229172 | 222028 | 123  | 8.72     | 4.69   | 4.87   |\n"
      "| 4@667MHz    | 15.15| 9.83    | 436807 | 398124 | 227  | 16.43    | 8.75   | 9.07   |\n"
      "| 8@667MHz    | 28.69| 18.60   | 848511 | 730506 | 435  | 30.21    | 19.10  | 19.76  |\n\n");
}

void BM_LogicSynthesis1Cu667(benchmark::State& state) {
  const gpup::plan::Planner planner(&technology());
  for (auto _ : state) {
    auto result = planner.logic_synthesis({1, 667.0, {}, {}});
    benchmark::DoNotOptimize(result.stats.memory_count);
  }
}
BENCHMARK(BM_LogicSynthesis1Cu667);

void BM_FullTable1Dse(benchmark::State& state) {
  const gpup::plan::Planner planner(&technology());
  for (auto _ : state) {
    auto versions = planner.exercise({1, 2, 4, 8}, {500.0, 590.0, 667.0});
    benchmark::DoNotOptimize(versions.size());
  }
}
BENCHMARK(BM_FullTable1Dse);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
