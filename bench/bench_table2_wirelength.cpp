// Regenerates Table II: routing wirelength per metal layer for the four
// physically synthesised versions (1CU@500, 1CU@667, 8CU@500, 8CU@600 —
// the 8CU@667 netlist that closes at 600 MHz).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/plan/planner.hpp"
#include "src/plan/report.hpp"

namespace {

const gpup::tech::Technology& technology() {
  static const auto tech = gpup::tech::Technology::generic65();
  return tech;
}

void print_table2() {
  const gpup::plan::Planner planner(&technology());

  std::vector<std::pair<std::string, gpup::route::RouteReport>> layouts;
  struct Case {
    int cu;
    double freq;
    const char* label;
  };
  for (const Case c : {Case{1, 500.0, "1CU@500MHz"}, Case{1, 667.0, "1CU@667MHz"},
                       Case{8, 500.0, "8CU@500MHz"}, Case{8, 667.0, "8CU@600MHz"}}) {
    const auto logic = planner.logic_synthesis({c.cu, c.freq, {}, {}});
    const auto physical = planner.physical_synthesis(logic);
    layouts.emplace_back(c.label, physical.routing);
    std::printf("[table2] %-11s die %.0f x %.0f um, achieved %.0f MHz%s\n", c.label,
                physical.floorplan.die_w_um, physical.floorplan.die_h_um,
                physical.achieved_mhz,
                physical.meets_target ? "" : " (falls back, see notes)");
  }

  std::printf("\n=== Table II: routing length per metal layer, um (this repo) ===\n%s\n",
              gpup::plan::table2(layouts).to_console().c_str());
  std::printf(
      "=== Table II (paper, um) ===\n"
      "| Layer | 1CU@500   | 1CU@667    | 8CU@500    | 8CU@600    |\n"
      "| M2    | 3185110   | 15340072   | 20314957   | 25637608   |\n"
      "| M3    | 5132356   | 21219705   | 27928578   | 34890963   |\n"
      "| M4    | 2987163   | 9866798    | 19209669   | 22387405   |\n"
      "| M5    | 2713788   | 11293663   | 21953276   | 26355211   |\n"
      "| M6    | 1430594   | 8801517    | 14074944   | 11111664   |\n"
      "| M7    | 616666    | 2915533    | 6316321    | 5315697    |\n\n");
}

void BM_PhysicalSynthesis8Cu(benchmark::State& state) {
  const gpup::plan::Planner planner(&technology());
  const auto logic = planner.logic_synthesis({8, 667.0, {}, {}});
  for (auto _ : state) {
    auto physical = planner.physical_synthesis(logic);
    benchmark::DoNotOptimize(physical.achieved_mhz);
  }
}
BENCHMARK(BM_PhysicalSynthesis8Cu);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
