// Host-simulation throughput tracker: times the Table III cycle matrix
// serially and in parallel, prints a per-row breakdown, and writes
// BENCH_sim_throughput.json so the perf trajectory is visible across PRs.
//
// GPUP_BENCH_SCALE=N divides the input sizes by N (default 1 = paper
// sizes; CI smoke runs use 8). GPUP_BENCH_JSON overrides the output path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kern/benchmark.hpp"
#include "src/repro/repro.hpp"
#include "src/util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::uint32_t bench_scale() {
  const char* env = std::getenv("GPUP_BENCH_SCALE");
  const int value = (env != nullptr) ? std::atoi(env) : 1;
  return value >= 1 ? static_cast<std::uint32_t>(value) : 1u;
}

std::uint64_t total_cycles(const std::vector<gpup::repro::CycleRow>& rows) {
  std::uint64_t total = 0;
  for (const auto& row : rows) {
    total += row.riscv_cycles + row.riscv_optimized_cycles;
    for (auto cycles : row.gpu_cycles) total += cycles;
  }
  return total;
}

struct RowTiming {
  std::string name;
  double wall_s = 0.0;
  std::uint64_t cycles = 0;
};

// ---- single-launch intra-launch parallelism ------------------------------

struct SingleLaunchRow {
  int cu_count = 0;
  int threads = 0;
  double wall_s = 0.0;
  std::uint64_t cycles = 0;
};

struct SingleLaunchReport {
  std::string kernel;
  double host_scaling_before = 0.0;  ///< raw 2-thread capacity, pre-section
  double host_scaling_after = 0.0;   ///< ditto, post-section (drift guard)
  std::vector<SingleLaunchRow> rows;
  double best_speedup = 0.0;         ///< best parallel vs serial, any cu
  bool counters_identical = true;    ///< hard correctness self-check
  bool speedup_enforced = false;     ///< threshold applied (host capable)
  bool speedup_ok = true;            ///< >= 1.5x when enforced
};

/// Raw parallel capacity of the host right now: wall of one busy loop vs
/// two concurrent ones. ~2.0 on an idle multicore; ~1.0 when a second
/// thread buys nothing (single core, heavy steal, strict cgroup quota).
/// The single-launch speedup threshold is only enforced when the host
/// demonstrably offers parallel capacity — otherwise the check would
/// measure the hypervisor, not the simulator.
double measure_host_parallel_scaling() {
  volatile std::uint64_t sink = 0;
  const auto burn = [&sink](std::uint64_t iters) {
    std::uint64_t x = 1;
    for (std::uint64_t i = 0; i < iters; ++i) x = x * 6364136223846793005ull + 1;
    sink = x;
  };
  const std::uint64_t iters = 60'000'000;
  burn(iters / 4);  // warm the core
  const auto one_start = Clock::now();
  burn(iters);
  const double one = std::chrono::duration<double>(Clock::now() - one_start).count();
  const auto two_start = Clock::now();
  std::thread other([&] { burn(iters); });
  burn(iters);
  other.join();
  const double two = std::chrono::duration<double>(Clock::now() - two_start).count();
  return two > 0 ? 2.0 * one / two : 0.0;
}

bool same_counters(const gpup::sim::PerfCounters& a, const gpup::sim::PerfCounters& b) {
  return a == b;  // memberwise, new counter fields included automatically
}

/// One launch of the heaviest Table III kernel at the bench scale, swept
/// over device sizes (the paper's top 8-CU config plus the scaled devices
/// the ROADMAP targets) and intra-launch worker counts. Counters must be
/// bit-identical at every thread count; the >= 1.5x cycles/host-second
/// target is enforced whenever the host itself can scale. The thread
/// configs run interleaved (t1, t2, t4, t1, ...) with best-of-reps per
/// config, so a host whose capacity oscillates (noisy neighbours,
/// hypervisor steal) cannot skew the serial/parallel ratio by hitting
/// one group of repetitions harder than another.
SingleLaunchReport run_single_launch_report(std::uint32_t scale) {
  SingleLaunchReport report;
  report.kernel = "vec_mul";  // largest scale-8 launch in the suite (128 wavefronts)
  report.host_scaling_before = measure_host_parallel_scaling();

  const auto* bench = gpup::kern::benchmark_by_name(report.kernel);
  if (bench == nullptr) {
    std::fprintf(stderr, "single_launch: kernel '%s' missing from the suite\n",
                 report.kernel.c_str());
    report.counters_identical = false;  // fail the gate loudly, not by segfault
    return report;
  }
  const std::uint32_t size = std::max(64u, bench->gpu_input() / scale);
  constexpr int kThreadConfigs[] = {1, 2, 4};
  constexpr int kReps = 4;

  for (int cu_count : {8, 16, 32}) {
    struct Config {
      std::unique_ptr<gpup::rt::Context> context;
      gpup::rt::CommandQueue queue;
      gpup::isa::Program program;
      SingleLaunchRow row;
    };
    std::vector<Config> configs;
    for (int threads : kThreadConfigs) {
      gpup::sim::GpuConfig gpu_config;
      gpu_config.cu_count = cu_count;
      gpu_config.intra_launch_threads = threads;
      auto context = std::make_unique<gpup::rt::Context>(
          gpu_config, /*device_count=*/1, std::max(1u, static_cast<unsigned>(threads)));
      auto queue = context->create_queue();
      auto program = gpup::rt::Context::compile(bench->gpu_source());
      if (!program.ok()) {
        std::fprintf(stderr, "single_launch: %s\n", program.error().to_string().c_str());
        report.counters_identical = false;  // fail the gate loudly
        return report;
      }
      SingleLaunchRow row;
      row.cu_count = cu_count;
      row.threads = threads;
      row.wall_s = 1e300;
      configs.push_back(
          {std::move(context), std::move(queue), std::move(program).value(), row});
    }
    gpup::sim::PerfCounters serial_counters;
    for (int rep = 0; rep < kReps; ++rep) {
      for (auto& config : configs) {
        auto work = bench->prepare(config.queue, size);
        config.queue.finish();
        const auto start = Clock::now();
        auto kernel = config.queue.enqueue_kernel(config.program, work.params,
                                                  {work.global_size, work.wg_size});
        kernel.wait();
        config.row.wall_s = std::min(
            config.row.wall_s,
            std::chrono::duration<double>(Clock::now() - start).count());
        config.row.cycles = kernel.stats().cycles;
        if (config.row.threads == 1) {
          serial_counters = kernel.stats().counters;
        } else if (!same_counters(kernel.stats().counters, serial_counters)) {
          report.counters_identical = false;
        }
      }
    }
    double serial_wall = 0.0;
    double best_parallel = 1e300;
    for (auto& config : configs) {
      if (config.row.threads == 1) {
        serial_wall = config.row.wall_s;
      } else {
        best_parallel = std::min(best_parallel, config.row.wall_s);
      }
      report.rows.push_back(config.row);
    }
    if (best_parallel > 0) {
      report.best_speedup = std::max(report.best_speedup, serial_wall / best_parallel);
    }
  }
  report.host_scaling_after = measure_host_parallel_scaling();

  // Enforce the throughput target only when the host held real parallel
  // capacity through the whole section (both calibrations) and has spare
  // cores for the 4-thread rows; otherwise record the numbers and say
  // why. A 2-core dev box or a steal-heavy VM measures the hypervisor,
  // not the simulator.
  report.speedup_enforced =
      std::min(report.host_scaling_before, report.host_scaling_after) >= 1.8 &&
      std::thread::hardware_concurrency() >= 4;
  if (report.speedup_enforced) report.speedup_ok = report.best_speedup >= 1.5;
  return report;
}

void emit_json(std::uint32_t scale, double baseline_s, double serial_s,
               double parallel_s, std::uint64_t cycles, bool identical,
               const std::vector<RowTiming>& rows, const SingleLaunchReport& single) {
  const char* env = std::getenv("GPUP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_sim_throughput.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"sim_throughput\",\n");
  std::fprintf(out, "  \"scale\": %u,\n", scale);
  std::fprintf(out, "  \"threads\": %u,\n", gpup::ThreadPool::default_threads());
  std::fprintf(out, "  \"simulated_cycles\": %llu,\n",
               static_cast<unsigned long long>(cycles));
  std::fprintf(out,
               "  \"baseline\": \"serial sweep with idle_fast_forward disabled "
               "(closest in-tree stand-in for the pre-optimization simulator; "
               "hot-path refactor gains come on top)\",\n");
  std::fprintf(out, "  \"baseline_wall_s\": %.6f,\n", baseline_s);
  std::fprintf(out, "  \"serial_wall_s\": %.6f,\n", serial_s);
  std::fprintf(out, "  \"parallel_wall_s\": %.6f,\n", parallel_s);
  std::fprintf(out, "  \"serial_cycles_per_host_s\": %.0f,\n",
               serial_s > 0 ? static_cast<double>(cycles) / serial_s : 0.0);
  std::fprintf(out, "  \"parallel_cycles_per_host_s\": %.0f,\n",
               parallel_s > 0 ? static_cast<double>(cycles) / parallel_s : 0.0);
  std::fprintf(out, "  \"parallel_speedup\": %.3f,\n",
               parallel_s > 0 ? serial_s / parallel_s : 0.0);
  std::fprintf(out, "  \"fast_forward_speedup\": %.3f,\n",
               serial_s > 0 ? baseline_s / serial_s : 0.0);
  std::fprintf(out, "  \"speedup_vs_baseline\": %.3f,\n",
               parallel_s > 0 ? baseline_s / parallel_s : 0.0);
  std::fprintf(out, "  \"cycle_counts_identical\": %s,\n", identical ? "true" : "false");
  std::fprintf(out, "  \"single_launch\": {\n");
  std::fprintf(out, "    \"kernel\": \"%s\",\n", single.kernel.c_str());
  std::fprintf(out, "    \"host_scaling_before\": %.3f,\n", single.host_scaling_before);
  std::fprintf(out, "    \"host_scaling_after\": %.3f,\n", single.host_scaling_after);
  std::fprintf(out, "    \"counters_identical\": %s,\n",
               single.counters_identical ? "true" : "false");
  std::fprintf(out, "    \"best_speedup\": %.3f,\n", single.best_speedup);
  std::fprintf(out, "    \"speedup_check\": \"%s\",\n",
               !single.speedup_enforced
                   ? "skipped: host offers no parallel capacity"
                   : (single.speedup_ok ? "pass (>= 1.5x)" : "FAIL (< 1.5x)"));
  std::fprintf(out, "    \"rows\": [\n");
  for (std::size_t i = 0; i < single.rows.size(); ++i) {
    const auto& row = single.rows[i];
    std::fprintf(out,
                 "      {\"cu_count\": %d, \"threads\": %d, \"wall_s\": %.6f, "
                 "\"simulated_cycles\": %llu, \"mcycles_per_host_s\": %.2f}%s\n",
                 row.cu_count, row.threads, row.wall_s,
                 static_cast<unsigned long long>(row.cycles),
                 row.wall_s > 0 ? row.cycles / row.wall_s / 1e6 : 0.0,
                 i + 1 < single.rows.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"wall_s\": %.6f, "
                 "\"simulated_cycles\": %llu}%s\n",
                 rows[i].name.c_str(), rows[i].wall_s,
                 static_cast<unsigned long long>(rows[i].cycles),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

/// Returns false if the baseline/serial/parallel cycle counts diverge.
bool run_throughput_report() {
  const std::uint32_t scale = bench_scale();

  // Baseline pass: serial with idle fast-forward disabled — the closest
  // in-tree stand-in for the pre-optimization simulator (the seed shipped
  // no build system, so it cannot be benchmarked directly). The hot-path
  // refactor gains are on top of what this pass shows.
  const auto baseline_start = Clock::now();
  const auto baseline_rows =
      gpup::repro::run_cycle_matrix(scale, /*threads=*/1, /*idle_fast_forward=*/false);
  const double baseline_s =
      std::chrono::duration<double>(Clock::now() - baseline_start).count();

  // Serial pass, timed per Table III row (one row = 2 RISC-V + 4 GPU runs).
  std::vector<RowTiming> row_timings;
  std::vector<gpup::repro::CycleRow> serial_rows;
  const auto serial_start = Clock::now();
  for (const auto* benchmark : gpup::kern::all_benchmarks()) {
    const auto row_start = Clock::now();
    auto row = gpup::repro::run_cycle_row(*benchmark, scale);
    RowTiming timing;
    timing.name = row.name;
    timing.wall_s = std::chrono::duration<double>(Clock::now() - row_start).count();
    timing.cycles = row.riscv_cycles + row.riscv_optimized_cycles;
    for (auto cycles : row.gpu_cycles) timing.cycles += cycles;
    row_timings.push_back(std::move(timing));
    serial_rows.push_back(std::move(row));
  }
  const double serial_s = std::chrono::duration<double>(Clock::now() - serial_start).count();

  const auto parallel_start = Clock::now();
  const auto parallel_rows = gpup::repro::run_cycle_matrix(scale, /*threads=*/0);
  const double parallel_s =
      std::chrono::duration<double>(Clock::now() - parallel_start).count();

  bool identical = serial_rows.size() == parallel_rows.size() &&
                   serial_rows.size() == baseline_rows.size();
  for (std::size_t i = 0; identical && i < serial_rows.size(); ++i) {
    identical =
        serial_rows[i].riscv_cycles == parallel_rows[i].riscv_cycles &&
        serial_rows[i].riscv_optimized_cycles == parallel_rows[i].riscv_optimized_cycles &&
        serial_rows[i].gpu_cycles == parallel_rows[i].gpu_cycles &&
        serial_rows[i].riscv_cycles == baseline_rows[i].riscv_cycles &&
        serial_rows[i].riscv_optimized_cycles == baseline_rows[i].riscv_optimized_cycles &&
        serial_rows[i].gpu_cycles == baseline_rows[i].gpu_cycles;
  }

  const std::uint64_t cycles = total_cycles(serial_rows);
  std::printf("=== Simulator throughput (Table III matrix, scale %u) ===\n", scale);
  std::printf("simulated cycles: %llu\n", static_cast<unsigned long long>(cycles));
  std::printf("baseline: %.3f s  (serial, fast-forward off; %.1f Mcycles/host-s)\n",
              baseline_s, baseline_s > 0 ? cycles / baseline_s / 1e6 : 0.0);
  std::printf("serial:   %.3f s  (%.1f Mcycles/host-s, %.2fx vs baseline)\n", serial_s,
              serial_s > 0 ? cycles / serial_s / 1e6 : 0.0,
              serial_s > 0 ? baseline_s / serial_s : 0.0);
  std::printf("parallel: %.3f s  (%.1f Mcycles/host-s, %u threads, %.2fx vs serial, "
              "%.2fx vs baseline)\n",
              parallel_s, parallel_s > 0 ? cycles / parallel_s / 1e6 : 0.0,
              gpup::ThreadPool::default_threads(),
              parallel_s > 0 ? serial_s / parallel_s : 0.0,
              parallel_s > 0 ? baseline_s / parallel_s : 0.0);
  std::printf("baseline/serial/parallel cycle counts identical: %s\n",
              identical ? "yes" : "NO");

  // Single-launch section: intra-launch thread scaling on one big launch.
  const auto single = run_single_launch_report(scale);
  std::printf("=== Single launch (%s, scale %u) ===\n", single.kernel.c_str(), scale);
  std::printf("host parallel scaling: %.2fx before, %.2fx after (2 busy threads vs 1)\n",
              single.host_scaling_before, single.host_scaling_after);
  for (const auto& row : single.rows) {
    std::printf("cu=%-2d threads=%d: %8.4f s  (%7.2f Mcycles/host-s)\n", row.cu_count,
                row.threads, row.wall_s,
                row.wall_s > 0 ? row.cycles / row.wall_s / 1e6 : 0.0);
  }
  std::printf("best parallel speedup: %.2fx — counters identical: %s — 1.5x check: %s\n",
              single.best_speedup, single.counters_identical ? "yes" : "NO",
              !single.speedup_enforced
                  ? "skipped (host offers no parallel capacity)"
                  : (single.speedup_ok ? "pass" : "FAIL"));

  emit_json(scale, baseline_s, serial_s, parallel_s, cycles, identical, row_timings,
            single);
  return identical && single.counters_identical && single.speedup_ok;
}

void BM_CycleMatrixSerial(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = gpup::repro::run_cycle_matrix(bench_scale(), 1);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_CycleMatrixSerial)->Unit(benchmark::kMillisecond);

void BM_CycleMatrixParallel(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = gpup::repro::run_cycle_matrix(bench_scale(), 0);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_CycleMatrixParallel)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Fails CI on any determinism cross-check (matrix cycle counts,
  // single-launch counters at any thread count) and on a missed 1.5x
  // single-launch speedup when the host demonstrably scales.
  const bool ok = run_throughput_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
