// Host-simulation throughput tracker: times the Table III cycle matrix
// serially and in parallel, prints a per-row breakdown, and writes
// BENCH_sim_throughput.json so the perf trajectory is visible across PRs.
//
// GPUP_BENCH_SCALE=N divides the input sizes by N (default 1 = paper
// sizes; CI smoke runs use 8). GPUP_BENCH_JSON overrides the output path.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/repro/repro.hpp"
#include "src/util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::uint32_t bench_scale() {
  const char* env = std::getenv("GPUP_BENCH_SCALE");
  const int value = (env != nullptr) ? std::atoi(env) : 1;
  return value >= 1 ? static_cast<std::uint32_t>(value) : 1u;
}

std::uint64_t total_cycles(const std::vector<gpup::repro::CycleRow>& rows) {
  std::uint64_t total = 0;
  for (const auto& row : rows) {
    total += row.riscv_cycles + row.riscv_optimized_cycles;
    for (auto cycles : row.gpu_cycles) total += cycles;
  }
  return total;
}

struct RowTiming {
  std::string name;
  double wall_s = 0.0;
  std::uint64_t cycles = 0;
};

void emit_json(std::uint32_t scale, double baseline_s, double serial_s,
               double parallel_s, std::uint64_t cycles, bool identical,
               const std::vector<RowTiming>& rows) {
  const char* env = std::getenv("GPUP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_sim_throughput.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"sim_throughput\",\n");
  std::fprintf(out, "  \"scale\": %u,\n", scale);
  std::fprintf(out, "  \"threads\": %u,\n", gpup::ThreadPool::default_threads());
  std::fprintf(out, "  \"simulated_cycles\": %llu,\n",
               static_cast<unsigned long long>(cycles));
  std::fprintf(out,
               "  \"baseline\": \"serial sweep with idle_fast_forward disabled "
               "(closest in-tree stand-in for the pre-optimization simulator; "
               "hot-path refactor gains come on top)\",\n");
  std::fprintf(out, "  \"baseline_wall_s\": %.6f,\n", baseline_s);
  std::fprintf(out, "  \"serial_wall_s\": %.6f,\n", serial_s);
  std::fprintf(out, "  \"parallel_wall_s\": %.6f,\n", parallel_s);
  std::fprintf(out, "  \"serial_cycles_per_host_s\": %.0f,\n",
               serial_s > 0 ? static_cast<double>(cycles) / serial_s : 0.0);
  std::fprintf(out, "  \"parallel_cycles_per_host_s\": %.0f,\n",
               parallel_s > 0 ? static_cast<double>(cycles) / parallel_s : 0.0);
  std::fprintf(out, "  \"parallel_speedup\": %.3f,\n",
               parallel_s > 0 ? serial_s / parallel_s : 0.0);
  std::fprintf(out, "  \"fast_forward_speedup\": %.3f,\n",
               serial_s > 0 ? baseline_s / serial_s : 0.0);
  std::fprintf(out, "  \"speedup_vs_baseline\": %.3f,\n",
               parallel_s > 0 ? baseline_s / parallel_s : 0.0);
  std::fprintf(out, "  \"cycle_counts_identical\": %s,\n", identical ? "true" : "false");
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"wall_s\": %.6f, "
                 "\"simulated_cycles\": %llu}%s\n",
                 rows[i].name.c_str(), rows[i].wall_s,
                 static_cast<unsigned long long>(rows[i].cycles),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

/// Returns false if the baseline/serial/parallel cycle counts diverge.
bool run_throughput_report() {
  const std::uint32_t scale = bench_scale();

  // Baseline pass: serial with idle fast-forward disabled — the closest
  // in-tree stand-in for the pre-optimization simulator (the seed shipped
  // no build system, so it cannot be benchmarked directly). The hot-path
  // refactor gains are on top of what this pass shows.
  const auto baseline_start = Clock::now();
  const auto baseline_rows =
      gpup::repro::run_cycle_matrix(scale, /*threads=*/1, /*idle_fast_forward=*/false);
  const double baseline_s =
      std::chrono::duration<double>(Clock::now() - baseline_start).count();

  // Serial pass, timed per Table III row (one row = 2 RISC-V + 4 GPU runs).
  std::vector<RowTiming> row_timings;
  std::vector<gpup::repro::CycleRow> serial_rows;
  const auto serial_start = Clock::now();
  for (const auto* benchmark : gpup::kern::all_benchmarks()) {
    const auto row_start = Clock::now();
    auto row = gpup::repro::run_cycle_row(*benchmark, scale);
    RowTiming timing;
    timing.name = row.name;
    timing.wall_s = std::chrono::duration<double>(Clock::now() - row_start).count();
    timing.cycles = row.riscv_cycles + row.riscv_optimized_cycles;
    for (auto cycles : row.gpu_cycles) timing.cycles += cycles;
    row_timings.push_back(std::move(timing));
    serial_rows.push_back(std::move(row));
  }
  const double serial_s = std::chrono::duration<double>(Clock::now() - serial_start).count();

  const auto parallel_start = Clock::now();
  const auto parallel_rows = gpup::repro::run_cycle_matrix(scale, /*threads=*/0);
  const double parallel_s =
      std::chrono::duration<double>(Clock::now() - parallel_start).count();

  bool identical = serial_rows.size() == parallel_rows.size() &&
                   serial_rows.size() == baseline_rows.size();
  for (std::size_t i = 0; identical && i < serial_rows.size(); ++i) {
    identical =
        serial_rows[i].riscv_cycles == parallel_rows[i].riscv_cycles &&
        serial_rows[i].riscv_optimized_cycles == parallel_rows[i].riscv_optimized_cycles &&
        serial_rows[i].gpu_cycles == parallel_rows[i].gpu_cycles &&
        serial_rows[i].riscv_cycles == baseline_rows[i].riscv_cycles &&
        serial_rows[i].riscv_optimized_cycles == baseline_rows[i].riscv_optimized_cycles &&
        serial_rows[i].gpu_cycles == baseline_rows[i].gpu_cycles;
  }

  const std::uint64_t cycles = total_cycles(serial_rows);
  std::printf("=== Simulator throughput (Table III matrix, scale %u) ===\n", scale);
  std::printf("simulated cycles: %llu\n", static_cast<unsigned long long>(cycles));
  std::printf("baseline: %.3f s  (serial, fast-forward off; %.1f Mcycles/host-s)\n",
              baseline_s, baseline_s > 0 ? cycles / baseline_s / 1e6 : 0.0);
  std::printf("serial:   %.3f s  (%.1f Mcycles/host-s, %.2fx vs baseline)\n", serial_s,
              serial_s > 0 ? cycles / serial_s / 1e6 : 0.0,
              serial_s > 0 ? baseline_s / serial_s : 0.0);
  std::printf("parallel: %.3f s  (%.1f Mcycles/host-s, %u threads, %.2fx vs serial, "
              "%.2fx vs baseline)\n",
              parallel_s, parallel_s > 0 ? cycles / parallel_s / 1e6 : 0.0,
              gpup::ThreadPool::default_threads(),
              parallel_s > 0 ? serial_s / parallel_s : 0.0,
              parallel_s > 0 ? baseline_s / parallel_s : 0.0);
  std::printf("baseline/serial/parallel cycle counts identical: %s\n",
              identical ? "yes" : "NO");

  emit_json(scale, baseline_s, serial_s, parallel_s, cycles, identical, row_timings);
  return identical;
}

void BM_CycleMatrixSerial(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = gpup::repro::run_cycle_matrix(bench_scale(), 1);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_CycleMatrixSerial)->Unit(benchmark::kMillisecond);

void BM_CycleMatrixParallel(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = gpup::repro::run_cycle_matrix(bench_scale(), 0);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_CycleMatrixParallel)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool identical = run_throughput_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return identical ? 0 : 1;  // fail CI if the determinism cross-check broke
}
