// Host-runtime throughput tracker: measures kernels/host-second through
// the asynchronous Context/CommandQueue API at 1..16 concurrent queues
// (one device per queue, workers = hardware concurrency) and writes
// BENCH_queue_throughput.json so the serving-throughput trajectory is
// visible across PRs.
//
// Each queue is driven by a closed-loop client thread — upload once, then
// repeatedly enqueue a launch + result read and block on the read event,
// like a serving client awaiting its answer. One client leaves workers
// idle and pays the enqueue/wake round-trip serially; N clients overlap
// both, which is exactly the concurrency the Context exists to serve.
//
// Self-check: every queue's read-back must match the host golden, and —
// since each queue sees an identical device + identical launches — every
// launch's cycle count must be bit-identical across all queues and all
// queue counts. Exits non-zero on divergence (CI gate).
//
// GPUP_BENCH_JSON overrides the output path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/rt/runtime.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kVecMulSource = R"(.kernel vm
  tid r1
  param r2, 0
  bgeu r1, r2, done
  slli r3, r1, 2
  param r4, 1
  add r4, r4, r3
  lw r5, 0(r4)
  param r6, 2
  add r6, r6, r3
  lw r7, 0(r6)
  mul r8, r5, r7
  param r9, 3
  add r9, r9, r3
  sw r8, 0(r9)
done:
  ret
)";

constexpr std::uint32_t kN = 1024;
constexpr int kLaunchesPerQueue = 48;

gpup::sim::GpuConfig bench_config() {
  gpup::sim::GpuConfig config;
  config.global_mem_bytes = 1 << 20;  // 3 x 32 KB buffers per device
  return config;
}

struct Point {
  int queues = 0;
  int launches = 0;
  double wall_s = 0.0;
  double kernels_per_s = 0.0;
};

struct RunResult {
  double wall_s = 0.0;
  bool valid = true;
  std::vector<std::uint64_t> launch_cycles;  // all launches, all queues
};

/// `queues` closed-loop client threads, each driving its own in-order
/// queue on its own device: one input upload pair, then kLaunchesPerQueue
/// rounds of launch + result read, blocking on each read.
RunResult run_point(int queues) {
  gpup::rt::Context context(bench_config(), /*device_count=*/queues, /*threads=*/0);
  const auto program = gpup::rt::Context::compile(kVecMulSource);
  GPUP_CHECK_MSG(program.ok(), program.error().to_string());

  std::vector<std::uint32_t> a(kN), b(kN), golden(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    a[i] = i * 2654435761u + 1;
    b[i] = i ^ 0x9e3779b9u;
    golden[i] = a[i] * b[i];
  }

  std::vector<std::uint8_t> client_valid(static_cast<std::size_t>(queues), 0);
  std::vector<std::vector<std::uint64_t>> client_cycles(static_cast<std::size_t>(queues));

  const auto client = [&](int index) {
    auto queue = context.create_queue();
    const auto buf_a = queue.alloc_words(kN);
    const auto buf_b = queue.alloc_words(kN);
    const auto buf_out = queue.alloc_words(kN);
    GPUP_CHECK(buf_a.ok() && buf_b.ok() && buf_out.ok());
    queue.enqueue_write(buf_a.value(), a);
    queue.enqueue_write(buf_b.value(), b);
    const auto args = gpup::rt::Args()
                          .add(kN).add(buf_a.value()).add(buf_b.value()).add(buf_out.value())
                          .words();
    bool valid = true;
    for (int l = 0; l < kLaunchesPerQueue; ++l) {
      const auto kernel = queue.enqueue_kernel(program.value(), args, {kN, 256});
      const auto read = queue.enqueue_read(buf_out.value());
      valid = valid && read.wait() && read.data() == golden;
      client_cycles[static_cast<std::size_t>(index)].push_back(kernel.stats().cycles);
    }
    client_valid[static_cast<std::size_t>(index)] = valid ? 1 : 0;
  };

  const auto start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(queues));
  for (int q = 0; q < queues; ++q) clients.emplace_back(client, q);
  for (auto& thread : clients) thread.join();

  RunResult result;
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  for (int q = 0; q < queues; ++q) {
    result.valid = result.valid && client_valid[static_cast<std::size_t>(q)] != 0;
    for (const std::uint64_t cycles : client_cycles[static_cast<std::size_t>(q)]) {
      result.launch_cycles.push_back(cycles);
    }
  }
  return result;
}

void emit_json(const std::vector<Point>& points, unsigned threads, bool self_check) {
  const char* env = std::getenv("GPUP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_queue_throughput.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const double base = points.empty() ? 0.0 : points.front().kernels_per_s;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"queue_throughput\",\n");
  std::fprintf(out, "  \"kernel\": \"vec_mul n=%u wg=256, 1 CU\",\n", kN);
  std::fprintf(out, "  \"launches_per_queue\": %d,\n", kLaunchesPerQueue);
  std::fprintf(out, "  \"threads\": %u,\n", threads);
  std::fprintf(out, "  \"self_check\": %s,\n", self_check ? "true" : "false");
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"queues\": %d, \"kernels\": %d, \"wall_s\": %.6f, "
                 "\"kernels_per_s\": %.2f, \"speedup_vs_1q\": %.3f}%s\n",
                 p.queues, p.launches, p.wall_s, p.kernels_per_s,
                 base > 0 ? p.kernels_per_s / base : 0.0, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

/// Returns false if any read-back or cross-queue cycle count diverged.
bool run_throughput_report() {
  const unsigned threads = gpup::ThreadPool::default_threads();
  std::printf("=== Queue throughput (%d launches/queue, %u worker threads) ===\n",
              kLaunchesPerQueue, threads);

  // Warm-up pass (thread spawn, lazy page zeroing, code paging) so the
  // 1-queue point is not penalised for going first.
  (void)run_point(2);

  std::vector<Point> points;
  bool self_check = true;
  std::uint64_t reference_cycles = 0;
  for (const int queues : {1, 2, 4, 8, 16}) {
    // Peak throughput over 5 reps: the walls are tens of milliseconds,
    // where a descheduled thread can double a single measurement; the
    // minimum wall is the reproducible statistic (noise only ever adds).
    std::vector<double> walls;
    for (int rep = 0; rep < 5; ++rep) {
      const RunResult run = run_point(queues);
      self_check = self_check && run.valid;
      for (const std::uint64_t cycles : run.launch_cycles) {
        if (reference_cycles == 0) reference_cycles = cycles;
        self_check = self_check && cycles == reference_cycles;
      }
      walls.push_back(run.wall_s);
    }
    std::sort(walls.begin(), walls.end());
    Point point;
    point.queues = queues;
    point.launches = queues * kLaunchesPerQueue;
    point.wall_s = walls.front();
    point.kernels_per_s = point.wall_s > 0 ? point.launches / point.wall_s : 0.0;
    std::printf("%2d queue(s): %3d kernels in %.3f s = %7.1f kernels/s (%.2fx vs 1q)\n",
                queues, point.launches, point.wall_s, point.kernels_per_s,
                points.empty() || points.front().kernels_per_s <= 0
                    ? 1.0
                    : point.kernels_per_s / points.front().kernels_per_s);
    points.push_back(point);
  }
  std::printf("self-check (goldens + bit-identical per-launch cycles): %s\n",
              self_check ? "ok" : "DIVERGED");

  emit_json(points, threads, self_check);
  return self_check;
}

void BM_EightQueues(benchmark::State& state) {
  for (auto _ : state) {
    auto run = run_point(8);
    benchmark::DoNotOptimize(run.wall_s);
  }
}
BENCHMARK(BM_EightQueues)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool self_check = run_throughput_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return self_check ? 0 : 1;  // fail CI if the determinism cross-check broke
}
