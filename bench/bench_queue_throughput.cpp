// Host-runtime throughput tracker: measures kernels/host-second through
// the asynchronous Context/CommandQueue API at 1..16 concurrent queues
// (one device per queue, workers = hardware concurrency), plus a
// mixed-priority multi-tenant fairness scenario over the pluggable
// scheduler policies and a heterogeneous-pool placement scenario over the
// placement policies, plus a serving scenario that drives the same
// closed loop through gpupd's wire protocol (in-process serve::Daemon
// over a real Unix socket) to price the serve layer's tax, plus a
// continuous-batching scenario (1000 tiny launches, 4 tenants, batched
// vs unbatched, win floor 1.5x with bit-identical per-launch counters),
// and writes BENCH_queue_throughput.json so the serving-throughput,
// fairness, placement, and batching trajectories are visible across PRs.
//
// Throughput section: each queue is driven by a closed-loop client thread
// — upload once, then repeatedly enqueue a launch + result read and block
// on the read event, like a serving client awaiting its answer. One
// client leaves workers idle and pays the enqueue/wake round-trip
// serially; N clients overlap both, which is exactly the concurrency the
// Context exists to serve.
//
// Fairness section: four tenants share two devices and two command
// workers (open-loop: every launch enqueued up front, released by one
// gate), under each scheduling policy in turn. Tenant 0 runs at high
// priority; the others at 0. Reports per-tenant throughput and the Jain
// fairness index (sum x)^2 / (n * sum x^2), self-checking that every
// tenant makes progress (no starvation — aging guarantees it even under
// kPriority), that under kPriority the high-priority tenant completes
// before the tenants contending for its device, and that kFairShare
// serves near-equal shares (Jain >= 0.7).
//
// Placement section: a 1/2/8-CU heterogeneous pool serves a descending
// ladder of vec_mul jobs (one queue per job, every kernel gated so all
// placements land before any completion — the assignment is a
// deterministic function of the policy). The load-blind kLeastBound
// baseline round-robins the ladder; PlacementPolicy::kPredictedCycles
// places each job by cost-model-predicted completion time, and must beat
// the baseline on simulated makespan (max per-device busy cycles).
//
// Overload section: closed-loop clients at 2x the saturation client count
// drive a 2-device pool with per-tenant admission control on. Over-limit
// submissions are shed (typed kRejected, O(1), never blocking); clients
// back off briefly and retry. Self-check: goodput under 2x overload stays
// >= 90% of the measured capacity, the admission-pending gauge never
// exceeds the configured depth, shedding actually occurred, and every
// validated read-back matches the golden.
//
// Self-check (CI gate, exits non-zero on violation): every read-back must
// match the host golden, and — since every launch is the same kernel on
// an identically configured device with a per-launch-cold cache — every
// launch's cycle count must be bit-identical across queues, queue counts,
// tenants, and scheduling policies; in the placement section every
// (job size, cu-config) cell must be bit-identical across placement
// policies, and predicted-cycles placement must win the makespan.
//
// GPUP_BENCH_JSON overrides the output path.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/rt/runtime.hpp"
#include "src/serve/client.hpp"
#include "src/serve/daemon.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kVecMulSource = R"(.kernel vm
  tid r1
  param r2, 0
  bgeu r1, r2, done
  slli r3, r1, 2
  param r4, 1
  add r4, r4, r3
  lw r5, 0(r4)
  param r6, 2
  add r6, r6, r3
  lw r7, 0(r6)
  mul r8, r5, r7
  param r9, 3
  add r9, r9, r3
  sw r8, 0(r9)
done:
  ret
)";

constexpr std::uint32_t kN = 1024;
constexpr int kLaunchesPerQueue = 48;

gpup::sim::GpuConfig bench_config() {
  gpup::sim::GpuConfig config;
  config.global_mem_bytes = 1 << 20;  // 3 x 32 KB buffers per device
  return config;
}

struct Point {
  int queues = 0;
  int launches = 0;
  double wall_s = 0.0;
  double kernels_per_s = 0.0;
};

struct RunResult {
  double wall_s = 0.0;
  bool valid = true;
  std::vector<std::uint64_t> launch_cycles;  // all launches, all queues
};

/// `queues` closed-loop client threads, each driving its own in-order
/// queue on its own device: one input upload pair, then kLaunchesPerQueue
/// rounds of launch + result read, blocking on each read.
RunResult run_point(int queues) {
  gpup::rt::Context context(bench_config(), /*device_count=*/queues, /*threads=*/0);
  const auto program = gpup::rt::Context::compile(kVecMulSource);
  GPUP_CHECK_MSG(program.ok(), program.error().to_string());

  std::vector<std::uint32_t> a(kN), b(kN), golden(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    a[i] = i * 2654435761u + 1;
    b[i] = i ^ 0x9e3779b9u;
    golden[i] = a[i] * b[i];
  }

  std::vector<std::uint8_t> client_valid(static_cast<std::size_t>(queues), 0);
  std::vector<std::vector<std::uint64_t>> client_cycles(static_cast<std::size_t>(queues));

  const auto client = [&](int index) {
    auto queue = context.create_queue();
    const auto buf_a = queue.alloc_words(kN);
    const auto buf_b = queue.alloc_words(kN);
    const auto buf_out = queue.alloc_words(kN);
    GPUP_CHECK(buf_a.ok() && buf_b.ok() && buf_out.ok());
    queue.enqueue_write(buf_a.value(), a);
    queue.enqueue_write(buf_b.value(), b);
    const auto args = gpup::rt::Args()
                          .add(kN).add(buf_a.value()).add(buf_b.value()).add(buf_out.value())
                          .words();
    bool valid = true;
    for (int l = 0; l < kLaunchesPerQueue; ++l) {
      const auto kernel = queue.enqueue_kernel(program.value(), args, {kN, 256});
      const auto read = queue.enqueue_read(buf_out.value());
      valid = valid && read.wait() && read.data() == golden;
      client_cycles[static_cast<std::size_t>(index)].push_back(kernel.stats().cycles);
    }
    client_valid[static_cast<std::size_t>(index)] = valid ? 1 : 0;
  };

  const auto start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(queues));
  for (int q = 0; q < queues; ++q) clients.emplace_back(client, q);
  for (auto& thread : clients) thread.join();

  RunResult result;
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  for (int q = 0; q < queues; ++q) {
    result.valid = result.valid && client_valid[static_cast<std::size_t>(q)] != 0;
    for (const std::uint64_t cycles : client_cycles[static_cast<std::size_t>(q)]) {
      result.launch_cycles.push_back(cycles);
    }
  }
  return result;
}

// ---- multi-tenant fairness scenario ---------------------------------------

constexpr int kTenants = 4;
constexpr int kFairLaunchesPerTenant = 16;
constexpr int kFairWorkers = 2;
constexpr int kFairDevices = 2;

struct TenantPoint {
  std::uint64_t tenant = 0;
  int priority = 0;
  int kernels = 0;
  double wall_s = 0.0;
  double kernels_per_s = 0.0;
};

struct FairnessRun {
  const char* policy = "";
  std::vector<TenantPoint> tenants;
  double jain = 0.0;
  bool all_valid = true;
  bool high_priority_first = true;  // meaningful for the kPriority run
  std::vector<std::uint64_t> launch_cycles;
};

double jain_index(const std::vector<TenantPoint>& tenants) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& tenant : tenants) {
    sum += tenant.kernels_per_s;
    sum_sq += tenant.kernels_per_s * tenant.kernels_per_s;
  }
  return sum_sq > 0 ? (sum * sum) / (static_cast<double>(tenants.size()) * sum_sq) : 0.0;
}

/// Four tenants, two devices (two tenants each), two workers: every
/// launch is enqueued up front on the tenant's in-order queue and the
/// whole batch is released by one gate, so the scheduling policy — not
/// submission interleaving — decides who runs. Tenant 0 is high priority.
/// Input buffers ride the per-device affinity cache (one upload per
/// device, shared by both tenants on it).
FairnessRun run_fairness(gpup::rt::SchedulerPolicy policy) {
  gpup::rt::ContextOptions options;
  options.devices.assign(kFairDevices, bench_config());
  options.threads = kFairWorkers;
  options.scheduler.policy = policy;
  gpup::rt::Context context(options);
  const auto program = gpup::rt::Context::compile(kVecMulSource);
  GPUP_CHECK_MSG(program.ok(), program.error().to_string());

  std::vector<std::uint32_t> a(kN), b(kN), golden(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    a[i] = i * 2654435761u + 1;
    b[i] = i ^ 0x9e3779b9u;
    golden[i] = a[i] * b[i];
  }

  FairnessRun run;
  run.policy = gpup::rt::to_string(policy);
  gpup::rt::UserEvent gate = context.create_user_event();

  struct Tenant {
    gpup::rt::CommandQueue queue;
    std::vector<gpup::rt::Event> kernels;
    gpup::rt::Event read;
    int priority = 0;
  };
  std::vector<Tenant> tenants(kTenants);
  // Completion order recorded by a final command on each tenant's queue —
  // the worker stamps it the moment the tenant's chain drains, so the
  // order reflects actual service order, not observer-thread wake-up
  // latency (decisive on oversubscribed 2-core CI hosts).
  auto completion_seq = std::make_shared<std::atomic<int>>(0);
  std::vector<int> completion_order(kTenants, 0);
  for (int t = 0; t < kTenants; ++t) {
    auto& tenant = tenants[static_cast<std::size_t>(t)];
    tenant.priority = t == 0 ? 8 : 0;
    gpup::rt::QueueOptions queue_options;
    queue_options.priority = tenant.priority;
    queue_options.tenant = static_cast<std::uint64_t>(t);
    queue_options.device = t % kFairDevices;
    auto created = context.create_queue(queue_options);
    GPUP_CHECK(created.ok());
    tenant.queue = created.value();

    auto up_a = tenant.queue.upload_shared(1, a);
    auto up_b = tenant.queue.upload_shared(2, b);
    const auto out = tenant.queue.alloc_words(kN);
    GPUP_CHECK(up_a.ok() && up_b.ok() && out.ok());
    const auto args = gpup::rt::Args()
                          .add(kN).add(up_a.value().buffer).add(up_b.value().buffer)
                          .add(out.value())
                          .words();
    for (int l = 0; l < kFairLaunchesPerTenant; ++l) {
      // The first launch carries the gate + upload deps; the rest chain
      // through the in-order queue.
      std::vector<gpup::rt::Event> wait_list;
      if (l == 0) wait_list = {gate.event(), up_a.value().ready, up_b.value().ready};
      tenant.kernels.push_back(
          tenant.queue.enqueue_kernel(program.value(), args, {kN, 256}, wait_list));
    }
    tenant.read = tenant.queue.enqueue_read(out.value());
    tenant.queue.enqueue_native([completion_seq, &completion_order, t]() -> gpup::Status {
      completion_order[static_cast<std::size_t>(t)] =
          completion_seq->fetch_add(1, std::memory_order_relaxed);
      return {};
    });
  }

  // One observer thread per tenant records the exact moment its final
  // read settles, so per-tenant walls (and the completion-order check)
  // are not skewed by observation order.
  std::vector<double> walls(kTenants, 0.0);
  std::vector<std::uint8_t> valid(kTenants, 0);
  const auto start = Clock::now();
  gate.complete();
  {
    std::vector<std::thread> observers;
    observers.reserve(kTenants);
    for (int t = 0; t < kTenants; ++t) {
      observers.emplace_back([&, t] {
        auto& tenant = tenants[static_cast<std::size_t>(t)];
        const bool ok = tenant.read.wait() && tenant.read.data() == golden;
        walls[static_cast<std::size_t>(t)] =
            std::chrono::duration<double>(Clock::now() - start).count();
        valid[static_cast<std::size_t>(t)] = ok ? 1 : 0;
      });
    }
    for (auto& observer : observers) observer.join();
  }
  GPUP_CHECK(context.finish());

  for (int t = 0; t < kTenants; ++t) {
    auto& tenant = tenants[static_cast<std::size_t>(t)];
    run.all_valid = run.all_valid && valid[static_cast<std::size_t>(t)] != 0;
    TenantPoint point;
    point.tenant = static_cast<std::uint64_t>(t);
    point.priority = tenant.priority;
    point.kernels = kFairLaunchesPerTenant;
    point.wall_s = walls[static_cast<std::size_t>(t)];
    point.kernels_per_s = point.wall_s > 0 ? point.kernels / point.wall_s : 0.0;
    run.tenants.push_back(point);
    for (const auto& kernel : tenant.kernels) {
      run.launch_cycles.push_back(kernel.stats().cycles);
    }
  }
  run.jain = jain_index(run.tenants);
  // "Completes first" is only meaningful under contention: compare tenant
  // 0 against the tenants sharing its device (t % kFairDevices == 0),
  // where the policy actually arbitrates. A tenant on the other device
  // runs an identical, non-contending workload and can tie on OS jitter.
  for (std::size_t t = 1; t < run.tenants.size(); ++t) {
    if (t % kFairDevices != 0) continue;
    if (completion_order[t] < completion_order[0]) run.high_priority_first = false;
  }
  return run;
}

// ---- heterogeneous placement scenario -------------------------------------

// Three pool devices spanning the G-GPU design space (1/2/8 CUs) serve a
// descending ladder of vec_mul jobs, one queue per job, placed by
// DeviceRequirements only — the placement policy decides where each lands.
// Every kernel is gated so all placements happen before any completion:
// the resulting assignment, and therefore the per-device busy cycles, are
// a deterministic function of the policy alone.
constexpr std::array<std::uint32_t, 8> kPlacementSizes = {6144, 5120, 4096, 3072,
                                                          2048, 1536, 1024, 512};
constexpr int kPlacementReps = 3;
constexpr std::array<int, 3> kPlacementCus = {1, 2, 8};

struct PlacementRun {
  const char* policy = "";
  double wall_s = 0.0;
  std::uint64_t makespan_cycles = 0;  ///< max over devices of summed launch cycles
  std::array<int, 3> device_jobs{};
  std::array<std::uint64_t, 3> device_busy_cycles{};
  bool all_valid = true;
  /// (job size, device cu_count) -> launch cycles, for the cross-policy
  /// bit-identical check.
  std::vector<std::pair<std::pair<std::uint32_t, int>, std::uint64_t>> cycle_cells;
};

PlacementRun run_placement(gpup::rt::PlacementPolicy policy) {
  gpup::rt::ContextOptions options;
  for (const int cu : kPlacementCus) {
    gpup::sim::GpuConfig config;
    config.cu_count = cu;
    config.global_mem_bytes = 4 << 20;
    options.devices.push_back(config);
  }
  options.threads = 2;
  options.placement = policy;
  gpup::rt::Context context(options);
  const auto program = gpup::rt::Context::compile(kVecMulSource);
  GPUP_CHECK_MSG(program.ok(), program.error().to_string());

  PlacementRun run;
  run.policy = gpup::rt::to_string(policy);
  gpup::rt::UserEvent gate = context.create_user_event();

  struct Job {
    std::uint32_t n = 0;
    gpup::rt::CommandQueue queue;
    gpup::rt::Event kernel;
    gpup::rt::Event read;
    std::vector<std::uint32_t> golden;
  };
  std::vector<Job> jobs;
  for (int rep = 0; rep < kPlacementReps; ++rep) {
    for (const std::uint32_t n : kPlacementSizes) {
      Job job;
      job.n = n;
      std::vector<std::uint32_t> a(n), b(n);
      job.golden.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        a[i] = i * 2654435761u + n;
        b[i] = i ^ 0x9e3779b9u ^ n;
        job.golden[i] = a[i] * b[i];
      }
      gpup::rt::QueueOptions queue_options;
      queue_options.hint.program = program.value();
      queue_options.hint.range = {n, 256};
      auto created = context.create_queue(queue_options);
      GPUP_CHECK_MSG(created.ok(), created.error().to_string());
      job.queue = created.value();
      const auto buf_a = job.queue.alloc_words(n);
      const auto buf_b = job.queue.alloc_words(n);
      const auto buf_out = job.queue.alloc_words(n);
      GPUP_CHECK(buf_a.ok() && buf_b.ok() && buf_out.ok());
      job.queue.enqueue_write(buf_a.value(), std::move(a));
      job.queue.enqueue_write(buf_b.value(), std::move(b));
      const auto args = gpup::rt::Args()
                            .add(job.n).add(buf_a.value()).add(buf_b.value())
                            .add(buf_out.value())
                            .words();
      job.kernel = job.queue.enqueue_kernel(program.value(), args, {job.n, 256},
                                            {gate.event()});
      job.read = job.queue.enqueue_read(buf_out.value());
      jobs.push_back(std::move(job));
    }
  }

  const auto start = Clock::now();
  gate.complete();
  GPUP_CHECK(context.finish());
  run.wall_s = std::chrono::duration<double>(Clock::now() - start).count();

  for (const Job& job : jobs) {
    const int device = job.queue.device_index();
    const int cu = context.device_config(device).cu_count;
    const std::uint64_t cycles = job.kernel.stats().cycles;
    run.all_valid = run.all_valid && job.read.data() == job.golden;
    run.device_jobs[static_cast<std::size_t>(device)] += 1;
    run.device_busy_cycles[static_cast<std::size_t>(device)] += cycles;
    run.cycle_cells.push_back({{job.n, cu}, cycles});
  }
  for (const std::uint64_t busy : run.device_busy_cycles) {
    run.makespan_cycles = std::max(run.makespan_cycles, busy);
  }
  return run;
}

/// Runs the placement scenario under both policies; returns false (failing
/// CI) when cost-model placement does not beat the load-blind baseline on
/// simulated makespan, when any read-back misses its golden, or when a
/// (job size, cu) cell's launch cycles diverge anywhere — placement must
/// shape WHERE work runs, never its simulated result.
bool run_placement_report(std::vector<PlacementRun>& runs) {
  std::printf("=== Heterogeneous placement (cu {1,2,8}, %zu job sizes x %d reps) ===\n",
              kPlacementSizes.size(), kPlacementReps);
  bool ok = true;
  std::map<std::pair<std::uint32_t, int>, std::uint64_t> reference;
  for (const auto policy :
       {gpup::rt::PlacementPolicy::kLeastBound, gpup::rt::PlacementPolicy::kPredictedCycles}) {
    PlacementRun run = run_placement(policy);
    ok = ok && run.all_valid;
    for (const auto& [cell, cycles] : run.cycle_cells) {
      const auto [it, inserted] = reference.emplace(cell, cycles);
      if (!inserted && it->second != cycles) {
        std::printf("  !! cycles diverged for n=%u on %dCU: %llu vs %llu\n", cell.first,
                    cell.second, static_cast<unsigned long long>(cycles),
                    static_cast<unsigned long long>(it->second));
        ok = false;
      }
    }
    std::printf("%17s: makespan %8llu cycles, wall %.3f s, jobs/device [%d %d %d], "
                "busy [%llu %llu %llu]\n",
                run.policy, static_cast<unsigned long long>(run.makespan_cycles), run.wall_s,
                run.device_jobs[0], run.device_jobs[1], run.device_jobs[2],
                static_cast<unsigned long long>(run.device_busy_cycles[0]),
                static_cast<unsigned long long>(run.device_busy_cycles[1]),
                static_cast<unsigned long long>(run.device_busy_cycles[2]));
    runs.push_back(std::move(run));
  }
  if (runs[1].makespan_cycles >= runs[0].makespan_cycles) {
    std::printf("  !! predicted-cycles placement lost to least-bound (%llu >= %llu)\n",
                static_cast<unsigned long long>(runs[1].makespan_cycles),
                static_cast<unsigned long long>(runs[0].makespan_cycles));
    ok = false;
  } else {
    std::printf("placement makespan: predicted-cycles %.2fx better than least-bound\n",
                static_cast<double>(runs[0].makespan_cycles) /
                    static_cast<double>(runs[1].makespan_cycles));
  }
  std::printf("placement self-check: %s\n", ok ? "ok" : "FAILED");
  return ok;
}

// ---- overload / admission-control scenario --------------------------------

constexpr int kOverloadDevices = 2;
constexpr int kSaturationClients = 4;   // capacity phase: 2 clients per device
constexpr int kOverloadClients = 8;     // overload phase: 2x saturation
// Between the capacity phase's natural in-flight demand (4 clients x
// kernel+read = 8 slots — a smaller depth would throttle below capacity)
// and the overload phase's demand (16 slots — a larger depth would never
// shed).
constexpr std::uint32_t kAdmissionDepth = 10;
constexpr double kOverloadPhaseSeconds = 1.0;
constexpr double kGoodputFloor = 0.9;

struct OverloadPhase {
  double wall_s = 0.0;
  std::uint64_t good = 0;       ///< completed, admitted kernel launches
  std::uint64_t shed = 0;       ///< submissions rejected by admission
  std::uint64_t invalid = 0;    ///< validated read-backs that missed golden
  std::uint64_t max_pending = 0;  ///< peak sampled admission-pending gauge
  double kernels_per_s = 0.0;
};

/// One timed phase: `clients` closed-loop threads (shared tenant 0, one
/// in-order queue each, round-robin over the pool) each run launch + read
/// + block rounds until the deadline. With admission on, a shed
/// submission costs a short backoff and a retry — the client never
/// blocks in the runtime and the accepted work keeps flowing.
OverloadPhase run_overload_phase(int clients, bool admission_on) {
  gpup::rt::ContextOptions options;
  options.devices.assign(kOverloadDevices, bench_config());
  if (admission_on) options.admission.max_pending_per_tenant = kAdmissionDepth;
  gpup::rt::Context context(std::move(options));
  const auto program = gpup::rt::Context::compile(kVecMulSource);
  GPUP_CHECK_MSG(program.ok(), program.error().to_string());

  std::vector<std::uint32_t> a(kN), b(kN), golden(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    a[i] = i * 2654435761u + 1;
    b[i] = i ^ 0x9e3779b9u;
    golden[i] = a[i] * b[i];
  }

  // Setup runs serially with every write awaited, so the admission gauge
  // stays at <=1 and the measured phase starts from a clean slate.
  struct Client {
    gpup::rt::CommandQueue queue;
    gpup::rt::Buffer out;
    std::vector<std::uint32_t> args;
  };
  std::vector<Client> setups;
  for (int c = 0; c < clients; ++c) {
    Client client;
    client.queue = context.create_queue();
    const auto buf_a = client.queue.alloc_words(kN);
    const auto buf_b = client.queue.alloc_words(kN);
    const auto buf_out = client.queue.alloc_words(kN);
    GPUP_CHECK(buf_a.ok() && buf_b.ok() && buf_out.ok());
    GPUP_CHECK(client.queue.enqueue_write(buf_a.value(), a).wait());
    GPUP_CHECK(client.queue.enqueue_write(buf_b.value(), b).wait());
    client.out = buf_out.value();
    client.args = gpup::rt::Args()
                      .add(kN).add(buf_a.value()).add(buf_b.value()).add(buf_out.value())
                      .words();
    setups.push_back(std::move(client));
  }

  OverloadPhase phase;
  std::atomic<std::uint64_t> good{0};
  std::atomic<std::uint64_t> invalid{0};
  std::atomic<std::uint64_t> max_pending{0};
  std::atomic<bool> stop{false};

  const auto worker = [&](int index) {
    auto& client = setups[static_cast<std::size_t>(index)];
    int consecutive_sheds = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto kernel = client.queue.enqueue_kernel(program.value(), client.args,
                                                      {kN, 256});
      if (kernel.status() == gpup::rt::EventStatus::kFailed &&
          kernel.error().code == gpup::ErrorCode::kRejected) {
        // Shed: exponential backoff, then retry. The rejection was
        // immediate (no device time, no queue poisoning), and the backoff
        // keeps starved clients asleep instead of burning the CPU the
        // admitted clients' workers need — decisive on small CI hosts.
        consecutive_sheds = std::min(consecutive_sheds + 1, 6);
        std::this_thread::sleep_for(std::chrono::microseconds(100)
                                    * (1 << consecutive_sheds));
        continue;
      }
      consecutive_sheds = 0;
      const auto read = client.queue.enqueue_read(client.out);
      const bool read_admitted =
          !(read.status() == gpup::rt::EventStatus::kFailed &&
            read.error().code == gpup::ErrorCode::kRejected);
      if (read_admitted) {
        if (read.wait()) {
          if (read.data() != golden) invalid.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (kernel.wait()) good.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // The gauge monitor pins the bounded-queue claim: the admission-pending
  // gauge must never exceed the configured depth while clients hammer at
  // 2x capacity.
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto pending = context.gauges().admission_pending;
      std::uint64_t seen = max_pending.load(std::memory_order_relaxed);
      while (pending > seen &&
             !max_pending.compare_exchange_weak(seen, pending, std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) threads.emplace_back(worker, c);
  std::this_thread::sleep_for(std::chrono::duration<double>(kOverloadPhaseSeconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();
  monitor.join();
  context.finish();
  phase.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  phase.good = good.load();
  phase.shed = context.admission_rejected();
  phase.invalid = invalid.load();
  phase.max_pending = max_pending.load();
  phase.kernels_per_s = phase.wall_s > 0 ? static_cast<double>(phase.good) / phase.wall_s : 0.0;
  GPUP_CHECK_MSG(context.gauges().admission_pending == 0,
                 "admission slots leaked after finish()");
  return phase;
}

struct OverloadReport {
  OverloadPhase capacity;
  OverloadPhase overload;
  double goodput_ratio = 0.0;
};

// ---- serving (gpupd wire protocol) scenario -------------------------------

// The serve layer's tax over the in-process API: N closed-loop sessions
// speak the length-prefixed protocol to an in-process Daemon over a real
// Unix socket (frame encode + socket hop + session dispatch per request),
// each running launch + read + wait rounds against its own buffer. The
// self-check mirrors the rest of the file — every read-back golden, and
// after drain() the context gauges must be zero (no leaked reservations
// from the serving path).
constexpr int kServeRounds = 24;
constexpr int kServeDevices = 2;

struct ServePoint {
  int clients = 0;
  int rounds = 0;
  double wall_s = 0.0;
  double rounds_per_s = 0.0;
};

struct ServeRunResult {
  double wall_s = 0.0;
  bool valid = true;
  bool settled = true;
};

ServeRunResult run_serve_point(int clients) {
  const std::string path =
      "/tmp/gpupd-bench-" + std::to_string(::getpid()) + "-" + std::to_string(clients) + ".sock";
  gpup::serve::DaemonOptions options;
  options.socket_path = path;
  options.context.devices.assign(kServeDevices, bench_config());
  options.max_sessions = clients;
  gpup::serve::Daemon daemon(options);
  GPUP_CHECK_MSG(daemon.start().ok(), "gpupd bench daemon failed to start");

  std::vector<std::uint32_t> a(kN), golden(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    a[i] = i * 2654435761u + 1;
    golden[i] = a[i] * 3 + 7;
  }

  constexpr const char* kStepSource = R"(.kernel step
  tid   r1
  param r2, 0
  bgeu  r1, r2, done
  slli  r3, r1, 2
  param r4, 1
  add   r4, r4, r3
  lw    r5, 0(r4)
  addi  r6, r0, 3
  mul   r5, r5, r6
  param r7, 2
  add   r5, r5, r7
  sw    r5, 0(r4)
done:
  ret
)";

  std::vector<std::uint8_t> client_valid(static_cast<std::size_t>(clients), 0);
  const auto session = [&](int index) {
    gpup::serve::ClientOptions client_options;
    client_options.tenant = static_cast<std::uint64_t>(index);
    auto connected = gpup::serve::Client::connect(path, client_options);
    GPUP_CHECK_MSG(connected.ok(), connected.error().to_string());
    gpup::serve::Client client = std::move(connected).value();
    const auto program = client.compile(kStepSource);
    const auto buffer = client.alloc_words(kN);
    GPUP_CHECK(program.ok() && buffer.ok());
    bool valid = true;
    for (int round = 0; round < kServeRounds; ++round) {
      valid = valid && client.write(buffer.value(), a).ok();
      gpup::serve::LaunchSpec spec;
      spec.program = program.value();
      spec.args = {{false, kN}, {true, buffer.value()}, {false, 7}};
      spec.global_size = kN;
      valid = valid && client.launch(spec).ok();
      const auto read = client.read(buffer.value());
      valid = valid && read.ok();
      if (!valid) break;
      const auto done = client.wait(read.value(), 30'000);
      valid = valid && done.ok() &&
              done.value().result == gpup::rt::WaitResult::kComplete &&
              done.value().data == golden;
    }
    client_valid[static_cast<std::size_t>(index)] = valid ? 1 : 0;
  };

  const auto start = Clock::now();
  std::vector<std::thread> sessions;
  sessions.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) sessions.emplace_back(session, c);
  for (auto& thread : sessions) thread.join();

  ServeRunResult result;
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  for (const std::uint8_t ok : client_valid) result.valid = result.valid && ok != 0;
  daemon.drain();
  const auto gauges = daemon.context().snapshot();
  result.settled = gauges.inflight_cycles == 0 && gauges.admission_pending == 0 &&
                   gauges.unsettled_commands == 0 && gauges.live_queues == 0;
  return result;
}

/// Returns false (failing CI) when a serving read-back misses its golden
/// or a drained daemon leaves nonzero context gauges behind.
bool run_serving_report(std::vector<ServePoint>& points) {
  std::printf("=== Serving (gpupd wire protocol, %d devices, %d rounds/session) ===\n",
              kServeDevices, kServeRounds);
  (void)run_serve_point(1);  // warm-up, discarded
  bool ok = true;
  for (const int clients : {1, 2, 4}) {
    // Best of 3: session walls are tens of milliseconds on shared hosts.
    double wall = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const ServeRunResult run = run_serve_point(clients);
      ok = ok && run.valid && run.settled;
      if (wall == 0.0 || run.wall_s < wall) wall = run.wall_s;
    }
    ServePoint point;
    point.clients = clients;
    point.rounds = clients * kServeRounds;
    point.wall_s = wall;
    point.rounds_per_s = wall > 0 ? point.rounds / wall : 0.0;
    std::printf("%2d session(s): %3d rounds in %.3f s = %7.1f rounds/s\n", clients,
                point.rounds, point.wall_s, point.rounds_per_s);
    points.push_back(point);
  }
  std::printf("serving self-check (goldens + settled gauges after drain): %s\n",
              ok ? "ok" : "FAILED");
  return ok;
}

/// Measures closed-loop capacity (admission off), then drives 2x the
/// saturation client count with admission on. Returns false (failing CI)
/// when goodput under overload drops below 90% of capacity, the pending
/// gauge exceeded the configured depth, no shedding happened (the 2x
/// load never tripped admission — the scenario is vacuous), or any
/// validated read-back missed its golden.
bool run_overload_report(OverloadReport& report) {
  std::printf("=== Overload shedding (%d devices, %d -> %d clients, depth %u) ===\n",
              kOverloadDevices, kSaturationClients, kOverloadClients, kAdmissionDepth);
  (void)run_overload_phase(kSaturationClients, false);  // warm-up, discarded
  // Best of 3 per phase: walls are ~1 s on shared CI hosts, where one
  // descheduled client can dent a single measurement.
  for (int rep = 0; rep < 3; ++rep) {
    const OverloadPhase capacity = run_overload_phase(kSaturationClients, false);
    if (capacity.kernels_per_s > report.capacity.kernels_per_s) report.capacity = capacity;
    const OverloadPhase overload = run_overload_phase(kOverloadClients, true);
    if (overload.kernels_per_s > report.overload.kernels_per_s) report.overload = overload;
  }
  report.goodput_ratio =
      report.capacity.kernels_per_s > 0
          ? report.overload.kernels_per_s / report.capacity.kernels_per_s
          : 0.0;

  bool ok = true;
  if (report.goodput_ratio < kGoodputFloor) {
    std::printf("  !! goodput under 2x overload is %.1f%% of capacity (floor %.0f%%)\n",
                report.goodput_ratio * 100.0, kGoodputFloor * 100.0);
    ok = false;
  }
  if (report.overload.max_pending > kAdmissionDepth) {
    std::printf("  !! admission-pending gauge hit %llu > depth %u\n",
                static_cast<unsigned long long>(report.overload.max_pending),
                kAdmissionDepth);
    ok = false;
  }
  if (report.overload.shed == 0) {
    std::printf("  !! 2x overload never tripped admission: the scenario is vacuous\n");
    ok = false;
  }
  if (report.capacity.invalid + report.overload.invalid > 0) {
    std::printf("  !! %llu validated read-backs missed the golden\n",
                static_cast<unsigned long long>(report.capacity.invalid +
                                                report.overload.invalid));
    ok = false;
  }
  std::printf("capacity: %7.1f kernels/s (%d clients)\n", report.capacity.kernels_per_s,
              kSaturationClients);
  std::printf("overload: %7.1f kernels/s (%d clients) = %.1f%% goodput, %llu shed, "
              "peak pending %llu\n",
              report.overload.kernels_per_s, kOverloadClients,
              report.goodput_ratio * 100.0,
              static_cast<unsigned long long>(report.overload.shed),
              static_cast<unsigned long long>(report.overload.max_pending));
  std::printf("overload self-check: %s\n", ok ? "ok" : "FAILED");
  return ok;
}

// ---- continuous batching scenario -----------------------------------------

// 1000 tiny launches across 4 tenants on one device, every launch on its
// own buffer (so the batch assembler can fuse freely), released by one
// gate — the dispatch-bound regime continuous batching exists for. The
// same workload runs with batching on and with BatchConfig::off(); the
// win is fused kernels/s over unbatched kernels/s.
//
// Self-check (CI gate): the win must reach kBatchWinFloor, every
// per-launch cycle count AND PerfCounters snapshot must be bit-identical
// between the batched and unbatched runs (batching changes wall-clock
// only), every read-back must match the host golden, batches must
// actually form when enabled (and never when disabled), and — the
// preemption check — tenant 0 at high priority must finish before every
// low-priority tenant even while the assembler is fusing, because the
// scheduler policy is re-consulted at every batch boundary.
constexpr int kBatchTenants = 4;
constexpr int kBatchLaunchesPerTenant = 250;  // 1000 total
constexpr std::uint32_t kBatchN = 32;
constexpr double kBatchWinFloor = 1.5;

constexpr const char* kBatchStepSource = R"(.kernel step
  tid   r1
  param r2, 0
  bgeu  r1, r2, done
  slli  r3, r1, 2
  param r4, 1
  add   r4, r4, r3
  lw    r5, 0(r4)
  addi  r6, r0, 3
  mul   r5, r5, r6
  param r7, 2
  add   r5, r5, r7
  sw    r5, 0(r4)
done:
  ret
)";

struct BatchingRun {
  double wall_s = 0.0;
  double kernels_per_s = 0.0;
  std::uint64_t batches_formed = 0;
  std::uint64_t launches_batched = 0;
  bool all_valid = true;
  bool high_priority_first = true;
  std::vector<std::uint64_t> cycles;              // per launch, enqueue order
  std::vector<gpup::sim::PerfCounters> counters;  // per launch, enqueue order
};

BatchingRun run_batching(bool batched) {
  gpup::rt::ContextOptions options;
  gpup::sim::GpuConfig config = bench_config();
  config.global_mem_bytes = 4 << 20;  // 1000 per-launch scratch buffers
  options.devices = {config};
  options.threads = 2;
  options.scheduler.policy = gpup::rt::SchedulerPolicy::kPriority;
  gpup::rt::Context context(std::move(options));
  const auto program = gpup::rt::Context::compile(kBatchStepSource);
  GPUP_CHECK_MSG(program.ok(), program.error().to_string());

  struct Tenant {
    gpup::rt::CommandQueue queue;
    std::vector<gpup::rt::Buffer> buffers;
    std::vector<gpup::rt::Event> kernels;
  };
  std::vector<Tenant> tenants(kBatchTenants);
  gpup::rt::UserEvent gate = context.create_user_event();
  auto completion_seq = std::make_shared<std::atomic<int>>(0);
  std::vector<int> completion_order(kBatchTenants, 0);

  // Setup (unmeasured): out-of-order queues so the whole wave is ready at
  // once, one pre-written buffer per launch, kernels gated. kPriority
  // requires an explicit batching opt-in — exactly what we're comparing.
  std::vector<gpup::rt::Event> writes;
  for (int t = 0; t < kBatchTenants; ++t) {
    auto& tenant = tenants[static_cast<std::size_t>(t)];
    gpup::rt::QueueOptions queue_options;
    queue_options.mode = gpup::rt::QueueMode::kOutOfOrder;
    queue_options.device = 0;
    queue_options.tenant = static_cast<std::uint64_t>(t);
    queue_options.priority = t == 0 ? 8 : 0;
    queue_options.batch =
        batched ? gpup::rt::BatchConfig::on() : gpup::rt::BatchConfig::off();
    auto created = context.create_queue(queue_options);
    GPUP_CHECK_MSG(created.ok(), created.error().to_string());
    tenant.queue = created.value();
    for (int l = 0; l < kBatchLaunchesPerTenant; ++l) {
      auto buffer = tenant.queue.alloc_words(kBatchN);
      GPUP_CHECK_MSG(buffer.ok(), buffer.error().to_string());
      tenant.buffers.push_back(buffer.value());
      writes.push_back(tenant.queue.enqueue_write(
          buffer.value(), std::vector<std::uint32_t>(kBatchN, 1)));
    }
  }
  for (const auto& write : writes) GPUP_CHECK(write.wait());
  for (int t = 0; t < kBatchTenants; ++t) {
    auto& tenant = tenants[static_cast<std::size_t>(t)];
    for (int l = 0; l < kBatchLaunchesPerTenant; ++l) {
      tenant.kernels.push_back(tenant.queue.enqueue_kernel(
          program.value(),
          gpup::rt::Args()
              .add(kBatchN)
              .add(tenant.buffers[static_cast<std::size_t>(l)])
              .add(static_cast<std::uint32_t>(l % 9 + 1)),
          {kBatchN, 32}, gpup::rt::LaunchOptions{}, {gate.event()}));
    }
    // Completion stamp: settles the moment this tenant's last kernel
    // does, so the order reflects actual service order.
    tenant.queue.enqueue_native(
        [completion_seq, &completion_order, t]() -> gpup::Status {
          completion_order[static_cast<std::size_t>(t)] =
              completion_seq->fetch_add(1, std::memory_order_relaxed);
          return {};
        },
        tenant.kernels);
  }

  const auto start = Clock::now();
  gate.complete();
  GPUP_CHECK(context.finish());
  BatchingRun run;
  run.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  const int total = kBatchTenants * kBatchLaunchesPerTenant;
  run.kernels_per_s = run.wall_s > 0 ? total / run.wall_s : 0.0;

  const auto gauges = context.snapshot();
  run.batches_formed = gauges.batches_formed_total;
  run.launches_batched = gauges.launches_batched_total;
  for (int t = 1; t < kBatchTenants; ++t) {
    if (completion_order[static_cast<std::size_t>(t)] < completion_order[0]) {
      run.high_priority_first = false;
    }
  }
  for (auto& tenant : tenants) {
    for (int l = 0; l < kBatchLaunchesPerTenant; ++l) {
      const auto& kernel = tenant.kernels[static_cast<std::size_t>(l)];
      run.all_valid = run.all_valid && kernel.status() == gpup::rt::EventStatus::kComplete;
      run.cycles.push_back(kernel.stats().cycles);
      run.counters.push_back(kernel.stats().counters);
      const auto read =
          tenant.queue.enqueue_read(tenant.buffers[static_cast<std::size_t>(l)]);
      run.all_valid = run.all_valid && read.wait() &&
                      read.data() == std::vector<std::uint32_t>(
                                         kBatchN, 3 + static_cast<std::uint32_t>(l % 9 + 1));
    }
  }
  return run;
}

struct BatchingReport {
  BatchingRun batched;
  BatchingRun unbatched;
  double win = 0.0;
};

/// Returns false (failing CI) when fused throughput misses the win floor,
/// when any per-launch cycle count or PerfCounters field differs between
/// the batched and unbatched runs, when batches fail to form (or form
/// with batching off), when a read-back misses its golden, or when the
/// high-priority tenant does not finish first in either mode.
bool run_batching_report(BatchingReport& report) {
  std::printf("=== Continuous batching (%d tenants x %d launches, 1 device, kPriority; "
              "tenant 0 priority 8) ===\n",
              kBatchTenants, kBatchLaunchesPerTenant);
  (void)run_batching(true);  // warm-up, discarded
  // Best of 3 per mode: walls are tens of milliseconds on shared hosts.
  for (int rep = 0; rep < 3; ++rep) {
    const BatchingRun batched = run_batching(true);
    if (report.batched.kernels_per_s == 0.0 ||
        batched.kernels_per_s > report.batched.kernels_per_s) {
      report.batched = batched;
    }
    const BatchingRun unbatched = run_batching(false);
    if (report.unbatched.kernels_per_s == 0.0 ||
        unbatched.kernels_per_s > report.unbatched.kernels_per_s) {
      report.unbatched = unbatched;
    }
  }
  report.win = report.unbatched.kernels_per_s > 0
                   ? report.batched.kernels_per_s / report.unbatched.kernels_per_s
                   : 0.0;

  bool ok = report.batched.all_valid && report.unbatched.all_valid;
  if (!ok) std::printf("  !! a read-back missed its golden\n");
  if (report.batched.cycles != report.unbatched.cycles ||
      report.batched.counters != report.unbatched.counters) {
    std::printf("  !! per-launch cycles/counters diverged between batched and "
                "unbatched runs\n");
    ok = false;
  }
  if (report.batched.batches_formed == 0) {
    std::printf("  !! batching enabled but no batch ever formed: the scenario is vacuous\n");
    ok = false;
  }
  if (report.unbatched.launches_batched != 0) {
    std::printf("  !! BatchConfig::off() still fused %llu launches\n",
                static_cast<unsigned long long>(report.unbatched.launches_batched));
    ok = false;
  }
  if (!report.batched.high_priority_first || !report.unbatched.high_priority_first) {
    std::printf("  !! high-priority tenant did not finish first (batched %s, unbatched %s)"
                " — a batch swallowed its turn?\n",
                report.batched.high_priority_first ? "ok" : "LOST",
                report.unbatched.high_priority_first ? "ok" : "LOST");
    ok = false;
  }
  if (report.win < kBatchWinFloor) {
    std::printf("  !! batching win %.2fx below the %.1fx floor\n", report.win,
                kBatchWinFloor);
    ok = false;
  }
  std::printf("unbatched: %8.1f kernels/s\n", report.unbatched.kernels_per_s);
  std::printf("  batched: %8.1f kernels/s = %.2fx (%llu batches, %llu launches fused)\n",
              report.batched.kernels_per_s, report.win,
              static_cast<unsigned long long>(report.batched.batches_formed),
              static_cast<unsigned long long>(report.batched.launches_batched));
  std::printf("batching self-check: %s\n", ok ? "ok" : "FAILED");
  return ok;
}

void emit_json(const std::vector<Point>& points, unsigned threads, bool self_check,
               const std::vector<FairnessRun>& fairness, bool fairness_check,
               const std::vector<PlacementRun>& placement, bool placement_check,
               const OverloadReport& overload, bool overload_check,
               const std::vector<ServePoint>& serving, bool serving_check,
               const BatchingReport& batching, bool batching_check) {
  const char* env = std::getenv("GPUP_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_queue_throughput.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const double base = points.empty() ? 0.0 : points.front().kernels_per_s;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"queue_throughput\",\n");
  std::fprintf(out, "  \"kernel\": \"vec_mul n=%u wg=256, 1 CU\",\n", kN);
  std::fprintf(out, "  \"launches_per_queue\": %d,\n", kLaunchesPerQueue);
  std::fprintf(out, "  \"threads\": %u,\n", threads);
  std::fprintf(out, "  \"self_check\": %s,\n", self_check ? "true" : "false");
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"queues\": %d, \"kernels\": %d, \"wall_s\": %.6f, "
                 "\"kernels_per_s\": %.2f, \"speedup_vs_1q\": %.3f}%s\n",
                 p.queues, p.launches, p.wall_s, p.kernels_per_s,
                 base > 0 ? p.kernels_per_s / base : 0.0, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"fairness\": {\n");
  std::fprintf(out, "    \"tenants\": %d,\n", kTenants);
  std::fprintf(out, "    \"launches_per_tenant\": %d,\n", kFairLaunchesPerTenant);
  std::fprintf(out, "    \"workers\": %d,\n", kFairWorkers);
  std::fprintf(out, "    \"devices\": %d,\n", kFairDevices);
  std::fprintf(out, "    \"self_check\": %s,\n", fairness_check ? "true" : "false");
  std::fprintf(out, "    \"runs\": [\n");
  for (std::size_t i = 0; i < fairness.size(); ++i) {
    const FairnessRun& run = fairness[i];
    std::fprintf(out, "      {\"policy\": \"%s\", \"jain\": %.4f, ", run.policy, run.jain);
    std::fprintf(out, "\"all_valid\": %s, \"high_priority_first\": %s, \"tenants\": [\n",
                 run.all_valid ? "true" : "false", run.high_priority_first ? "true" : "false");
    for (std::size_t t = 0; t < run.tenants.size(); ++t) {
      const TenantPoint& point = run.tenants[t];
      std::fprintf(out,
                   "        {\"tenant\": %llu, \"priority\": %d, \"kernels\": %d, "
                   "\"wall_s\": %.6f, \"kernels_per_s\": %.2f}%s\n",
                   static_cast<unsigned long long>(point.tenant), point.priority,
                   point.kernels, point.wall_s, point.kernels_per_s,
                   t + 1 < run.tenants.size() ? "," : "");
    }
    std::fprintf(out, "      ]}%s\n", i + 1 < fairness.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"placement\": {\n");
  std::fprintf(out, "    \"devices_cu\": [%d, %d, %d],\n", kPlacementCus[0], kPlacementCus[1],
               kPlacementCus[2]);
  std::fprintf(out, "    \"jobs\": %zu,\n", kPlacementSizes.size() * kPlacementReps);
  std::fprintf(out, "    \"self_check\": %s,\n", placement_check ? "true" : "false");
  std::fprintf(out, "    \"runs\": [\n");
  for (std::size_t i = 0; i < placement.size(); ++i) {
    const PlacementRun& run = placement[i];
    std::fprintf(out,
                 "      {\"policy\": \"%s\", \"makespan_cycles\": %llu, \"wall_s\": %.6f, "
                 "\"all_valid\": %s, \"device_jobs\": [%d, %d, %d], "
                 "\"device_busy_cycles\": [%llu, %llu, %llu]}%s\n",
                 run.policy, static_cast<unsigned long long>(run.makespan_cycles), run.wall_s,
                 run.all_valid ? "true" : "false", run.device_jobs[0], run.device_jobs[1],
                 run.device_jobs[2],
                 static_cast<unsigned long long>(run.device_busy_cycles[0]),
                 static_cast<unsigned long long>(run.device_busy_cycles[1]),
                 static_cast<unsigned long long>(run.device_busy_cycles[2]),
                 i + 1 < placement.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"overload\": {\n");
  std::fprintf(out, "    \"devices\": %d,\n", kOverloadDevices);
  std::fprintf(out, "    \"capacity_clients\": %d,\n", kSaturationClients);
  std::fprintf(out, "    \"overload_clients\": %d,\n", kOverloadClients);
  std::fprintf(out, "    \"admission_depth\": %u,\n", kAdmissionDepth);
  std::fprintf(out, "    \"goodput_floor\": %.2f,\n", kGoodputFloor);
  std::fprintf(out, "    \"self_check\": %s,\n", overload_check ? "true" : "false");
  std::fprintf(out,
               "    \"capacity\": {\"kernels_per_s\": %.2f, \"wall_s\": %.6f, "
               "\"completed\": %llu},\n",
               overload.capacity.kernels_per_s, overload.capacity.wall_s,
               static_cast<unsigned long long>(overload.capacity.good));
  std::fprintf(out,
               "    \"overload_2x\": {\"kernels_per_s\": %.2f, \"wall_s\": %.6f, "
               "\"completed\": %llu, \"shed\": %llu, \"max_pending\": %llu},\n",
               overload.overload.kernels_per_s, overload.overload.wall_s,
               static_cast<unsigned long long>(overload.overload.good),
               static_cast<unsigned long long>(overload.overload.shed),
               static_cast<unsigned long long>(overload.overload.max_pending));
  std::fprintf(out, "    \"goodput_ratio\": %.4f\n", overload.goodput_ratio);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"serving\": {\n");
  std::fprintf(out, "    \"devices\": %d,\n", kServeDevices);
  std::fprintf(out, "    \"rounds_per_session\": %d,\n", kServeRounds);
  std::fprintf(out, "    \"self_check\": %s,\n", serving_check ? "true" : "false");
  std::fprintf(out, "    \"points\": [\n");
  for (std::size_t i = 0; i < serving.size(); ++i) {
    const ServePoint& point = serving[i];
    std::fprintf(out,
                 "      {\"sessions\": %d, \"rounds\": %d, \"wall_s\": %.6f, "
                 "\"rounds_per_s\": %.2f}%s\n",
                 point.clients, point.rounds, point.wall_s, point.rounds_per_s,
                 i + 1 < serving.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"batching\": {\n");
  std::fprintf(out, "    \"tenants\": %d,\n", kBatchTenants);
  std::fprintf(out, "    \"launches\": %d,\n", kBatchTenants * kBatchLaunchesPerTenant);
  std::fprintf(out, "    \"win_floor\": %.2f,\n", kBatchWinFloor);
  std::fprintf(out, "    \"self_check\": %s,\n", batching_check ? "true" : "false");
  std::fprintf(out,
               "    \"batched\": {\"kernels_per_s\": %.2f, \"wall_s\": %.6f, "
               "\"batches_formed\": %llu, \"launches_batched\": %llu, "
               "\"high_priority_first\": %s},\n",
               batching.batched.kernels_per_s, batching.batched.wall_s,
               static_cast<unsigned long long>(batching.batched.batches_formed),
               static_cast<unsigned long long>(batching.batched.launches_batched),
               batching.batched.high_priority_first ? "true" : "false");
  std::fprintf(out,
               "    \"unbatched\": {\"kernels_per_s\": %.2f, \"wall_s\": %.6f, "
               "\"high_priority_first\": %s},\n",
               batching.unbatched.kernels_per_s, batching.unbatched.wall_s,
               batching.unbatched.high_priority_first ? "true" : "false");
  std::fprintf(out, "    \"win\": %.4f\n", batching.win);
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

/// Runs the fairness scenario under every policy; returns false (failing
/// CI) when a tenant starves or misbehaves:
///   - every tenant's read-back must be golden-valid under every policy
///     (all tenants make progress even while priority favors tenant 0);
///   - under kPriority the high-priority tenant must complete before its
///     same-device contenders;
///   - under kFairShare the Jain index must stay >= 0.7;
///   - every launch's cycle count must be bit-identical across tenants
///     and policies (per-launch-cold device state: scheduling must not
///     leak into simulated results).
bool run_fairness_report(std::vector<FairnessRun>& runs,
                         std::uint64_t* reference_cycles) {
  std::printf("=== Multi-tenant fairness (%d tenants, %d launches each, %d workers, "
              "%d devices; tenant 0 priority 8) ===\n",
              kTenants, kFairLaunchesPerTenant, kFairWorkers, kFairDevices);
  (void)run_fairness(gpup::rt::SchedulerPolicy::kFifo);  // warm-up, discarded

  bool ok = true;
  for (const auto policy :
       {gpup::rt::SchedulerPolicy::kFifo, gpup::rt::SchedulerPolicy::kPriority,
        gpup::rt::SchedulerPolicy::kFairShare}) {
    FairnessRun run = run_fairness(policy);
    ok = ok && run.all_valid;
    for (const std::uint64_t cycles : run.launch_cycles) {
      if (*reference_cycles == 0) *reference_cycles = cycles;
      ok = ok && cycles == *reference_cycles;
    }
    if (policy == gpup::rt::SchedulerPolicy::kPriority && !run.high_priority_first) {
      std::printf("  !! high-priority tenant did not complete first under kPriority\n");
      ok = false;
    }
    if (policy == gpup::rt::SchedulerPolicy::kFairShare && run.jain < 0.7) {
      std::printf("  !! fair-share Jain index %.3f < 0.7\n", run.jain);
      ok = false;
    }
    std::printf("%10s: jain %.3f%s |", run.policy, run.jain,
                run.high_priority_first ? " (t0 first)" : "");
    for (const auto& point : run.tenants) {
      std::printf(" t%llu%s %6.1f k/s", static_cast<unsigned long long>(point.tenant),
                  point.priority != 0 ? "*" : " ", point.kernels_per_s);
    }
    std::printf("\n");
    runs.push_back(std::move(run));
  }
  std::printf("fairness self-check: %s\n", ok ? "ok" : "FAILED");
  return ok;
}

/// Returns false if any read-back or cross-queue cycle count diverged.
bool run_throughput_report() {
  const unsigned threads = gpup::ThreadPool::default_threads();
  std::printf("=== Queue throughput (%d launches/queue, %u worker threads) ===\n",
              kLaunchesPerQueue, threads);

  // Warm-up pass (thread spawn, lazy page zeroing, code paging) so the
  // 1-queue point is not penalised for going first.
  (void)run_point(2);

  std::vector<Point> points;
  bool self_check = true;
  std::uint64_t reference_cycles = 0;
  for (const int queues : {1, 2, 4, 8, 16}) {
    // Peak throughput over 5 reps: the walls are tens of milliseconds,
    // where a descheduled thread can double a single measurement; the
    // minimum wall is the reproducible statistic (noise only ever adds).
    std::vector<double> walls;
    for (int rep = 0; rep < 5; ++rep) {
      const RunResult run = run_point(queues);
      self_check = self_check && run.valid;
      for (const std::uint64_t cycles : run.launch_cycles) {
        if (reference_cycles == 0) reference_cycles = cycles;
        self_check = self_check && cycles == reference_cycles;
      }
      walls.push_back(run.wall_s);
    }
    std::sort(walls.begin(), walls.end());
    Point point;
    point.queues = queues;
    point.launches = queues * kLaunchesPerQueue;
    point.wall_s = walls.front();
    point.kernels_per_s = point.wall_s > 0 ? point.launches / point.wall_s : 0.0;
    std::printf("%2d queue(s): %3d kernels in %.3f s = %7.1f kernels/s (%.2fx vs 1q)\n",
                queues, point.launches, point.wall_s, point.kernels_per_s,
                points.empty() || points.front().kernels_per_s <= 0
                    ? 1.0
                    : point.kernels_per_s / points.front().kernels_per_s);
    points.push_back(point);
  }
  std::printf("self-check (goldens + bit-identical per-launch cycles): %s\n",
              self_check ? "ok" : "DIVERGED");

  std::vector<FairnessRun> fairness;
  const bool fairness_check = run_fairness_report(fairness, &reference_cycles);

  std::vector<PlacementRun> placement;
  const bool placement_check = run_placement_report(placement);

  OverloadReport overload;
  const bool overload_check = run_overload_report(overload);

  std::vector<ServePoint> serving;
  const bool serving_check = run_serving_report(serving);

  BatchingReport batching;
  const bool batching_check = run_batching_report(batching);

  emit_json(points, threads, self_check, fairness, fairness_check, placement,
            placement_check, overload, overload_check, serving, serving_check,
            batching, batching_check);
  return self_check && fairness_check && placement_check && overload_check &&
         serving_check && batching_check;
}

void BM_EightQueues(benchmark::State& state) {
  for (auto _ : state) {
    auto run = run_point(8);
    benchmark::DoNotOptimize(run.wall_s);
  }
}
BENCHMARK(BM_EightQueues)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool self_check = run_throughput_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return self_check ? 0 : 1;  // fail CI if the determinism cross-check broke
}
