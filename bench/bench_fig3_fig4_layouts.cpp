// Regenerates Figs. 3 and 4: the four tapeout-ready floorplans
// (1CU@500, 1CU@667, 8CU@500, 8CU@600) with the paper's die dimensions,
// optimised-memory highlighting, and SVG exports written next to the
// binary (fig3_*.svg / fig4_*.svg) plus DEF-like text dumps.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "src/fp/layout_writer.hpp"
#include "src/plan/planner.hpp"

namespace {

const gpup::tech::Technology& technology() {
  static const auto tech = gpup::tech::Technology::generic65();
  return tech;
}

void print_layouts() {
  const gpup::plan::Planner planner(&technology());
  struct Case {
    int cu;
    double freq;
    const char* label;
    const char* file;
    const char* paper_die;
  };
  const Case cases[] = {
      {1, 500.0, "1CU@500MHz", "fig3_1cu_500.svg", "2700 x 2500"},
      {1, 667.0, "1CU@667MHz", "fig3_1cu_667.svg", "3200 x 2800"},
      {8, 500.0, "8CU@500MHz", "fig4_8cu_500.svg", "7150 x 6250"},
      {8, 667.0, "8CU@600MHz", "fig4_8cu_600.svg", "8350 x 7450"},
  };
  for (const Case& c : cases) {
    const auto logic = planner.logic_synthesis({c.cu, c.freq, {}, {}});
    const auto physical = planner.physical_synthesis(logic);

    int untouched = 0;
    int optimized = 0;
    for (const auto& macro : physical.floorplan.macros) {
      if (macro.group == gpup::netlist::MemGroup::kUntouched) ++untouched;
      else ++optimized;
    }
    std::printf("[fig3/4] %-11s die %.0f x %.0f um (paper %s), %d untouched + %d optimised "
                "macros, closes at %.0f MHz\n",
                c.label, physical.floorplan.die_w_um, physical.floorplan.die_h_um,
                c.paper_die, untouched, optimized, physical.achieved_mhz);
    for (const auto& note : physical.notes) std::printf("[fig3/4]   note: %s\n", note.c_str());

    std::ofstream svg(c.file);
    svg << gpup::fp::LayoutWriter::to_svg(physical.floorplan, c.label);
    std::ofstream def(std::string(c.file) + ".def.txt");
    def << gpup::fp::LayoutWriter::to_text(physical.floorplan, c.label);
  }
  std::printf("\nSVG + DEF-like dumps written to the working directory.\n\n");
}

void BM_FloorplanAndRoute8Cu(benchmark::State& state) {
  const gpup::plan::Planner planner(&technology());
  const auto logic = planner.logic_synthesis({8, 667.0, {}, {}});
  for (auto _ : state) {
    auto physical = planner.physical_synthesis(logic);
    benchmark::DoNotOptimize(physical.routing.total_um());
  }
}
BENCHMARK(BM_FloorplanAndRoute8Cu);

}  // namespace

int main(int argc, char** argv) {
  print_layouts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
