// Regenerates Fig. 5: raw speed-up of the G-GPU over the RISC-V baseline
// per kernel and CU count, using the paper's input-size scaling rule.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "src/repro/repro.hpp"

namespace {

std::uint32_t bench_scale() {
  const char* env = std::getenv("GPUP_BENCH_SCALE");
  const int value = (env != nullptr) ? std::atoi(env) : 1;
  return value >= 1 ? static_cast<std::uint32_t>(value) : 1u;
}

void print_fig5() {
  const auto rows = gpup::repro::run_cycle_matrix(bench_scale());
  std::printf("=== Fig. 5: speed-up over RISC-V (this repo) ===\n%s\n",
              gpup::repro::format_fig5(rows).to_console().c_str());

  // Paper-derived reference (from Table III counts and the scaling rule).
  std::printf("=== Fig. 5 (derived from the paper's Table III) ===\n");
  std::printf("| Kernel        | 1CU   | 2CU   | 4CU   | 8CU   |\n");
  for (const auto& paper : gpup::repro::paper_table3()) {
    const auto* benchmark = gpup::kern::benchmark_by_name(paper.name);
    const double ratio =
        static_cast<double>(benchmark->gpu_input()) / benchmark->riscv_input();
    std::printf("| %-13s | %-5.1f | %-5.1f | %-5.1f | %-5.1f |\n", paper.name,
                paper.riscv_kcycles * ratio / paper.gpu_kcycles[0],
                paper.riscv_kcycles * ratio / paper.gpu_kcycles[1],
                paper.riscv_kcycles * ratio / paper.gpu_kcycles[2],
                paper.riscv_kcycles * ratio / paper.gpu_kcycles[3]);
  }
  std::printf("\nPaper headline: up to ~223x (mat_mul, 8 CUs); as low as ~1.2x "
              "(div_int, 1 CU).\n\n");
}

void BM_SpeedupPipelineMatMul(benchmark::State& state) {
  const auto* mat_mul = gpup::kern::benchmark_by_name("mat_mul");
  gpup::sim::GpuConfig config;
  config.cu_count = 8;
  for (auto _ : state) {
    auto run = gpup::kern::run_gpu(*mat_mul, config, 2048);
    benchmark::DoNotOptimize(run.stats.cycles);
  }
}
BENCHMARK(BM_SpeedupPipelineMatMul);

}  // namespace

int main(int argc, char** argv) {
  print_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
