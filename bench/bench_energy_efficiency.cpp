// Extension: energy efficiency — the paper's motivating metric ("energy
// efficiency and throughput") which its evaluation never quantifies.
//
// Combines the two halves of the repository: per-kernel cycle counts from
// the cycle-accurate simulator and power from the PPA models, both at the
// 667 MHz operating point, for the G-GPU (1..8 CUs) and the CV32E40P-class
// baseline. Energy uses the paper's input-scaling rule so the comparison
// matches Fig. 5's.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "src/gen/ggpu_arch.hpp"
#include "src/plan/planner.hpp"
#include "src/power/power.hpp"
#include "src/repro/repro.hpp"

namespace {

std::uint32_t bench_scale() {
  const char* env = std::getenv("GPUP_BENCH_SCALE");
  const int value = (env != nullptr) ? std::atoi(env) : 1;
  return value >= 1 ? static_cast<std::uint32_t>(value) : 1u;
}

void print_energy() {
  const double freq_mhz = 667.0;
  const auto technology = gpup::tech::Technology::generic65();
  const gpup::plan::Planner planner(&technology);

  // Power of each configuration at the operating point.
  std::array<double, 4> gpu_watts{};
  for (std::size_t i = 0; i < gpup::repro::kCuConfigs.size(); ++i) {
    gpu_watts[i] = planner.logic_synthesis({gpup::repro::kCuConfigs[i], freq_mhz, {}, {}})
                       .power.total_w();
  }
  const gpup::power::PowerAnalyzer analyzer;
  const double riscv_watts =
      analyzer.analyze(gpup::gen::generate_riscv(technology), freq_mhz).total_w();
  std::printf("power @667 MHz: RISC-V %.3f W, G-GPU %.2f / %.2f / %.2f / %.2f W\n\n",
              riscv_watts, gpu_watts[0], gpu_watts[1], gpu_watts[2], gpu_watts[3]);

  const auto rows = gpup::repro::run_cycle_matrix(bench_scale());
  std::printf("=== Energy per (input-scaled) workload, uJ — and efficiency gain ===\n");
  std::printf("| kernel        | RISC-V uJ | 1CU uJ  | 8CU uJ  | gain 1CU | gain 8CU |\n");
  for (const auto& row : rows) {
    const double seconds_per_cycle = 1.0 / (freq_mhz * 1e6);
    const double input_ratio = static_cast<double>(row.gpu_input) / row.riscv_input;
    // RISC-V energy for the scaled workload (the Fig. 5 rule).
    const double riscv_uj = static_cast<double>(row.riscv_cycles) * input_ratio *
                            seconds_per_cycle * riscv_watts * 1e6;
    const double gpu1_uj =
        static_cast<double>(row.gpu_cycles[0]) * seconds_per_cycle * gpu_watts[0] * 1e6;
    const double gpu8_uj =
        static_cast<double>(row.gpu_cycles[3]) * seconds_per_cycle * gpu_watts[3] * 1e6;
    std::printf("| %-13s | %-9.1f | %-7.1f | %-7.1f | %-8.1f | %-8.1f |\n", row.name.c_str(),
                riscv_uj, gpu1_uj, gpu8_uj, riscv_uj / gpu1_uj, riscv_uj / gpu8_uj);
  }
  std::printf(
      "\nReading: for the highly parallel kernels the G-GPU is more energy-efficient\n"
      "than the CPU despite burning 3-28x its power, because it finishes 30-290x\n"
      "sooner; for the serial/divergent kernels the CPU is the efficient choice —\n"
      "quantifying the accelerator-selection guidance the paper gives designers.\n\n");
}

void BM_EnergyModelEvaluation(benchmark::State& state) {
  const auto technology = gpup::tech::Technology::generic65();
  const gpup::plan::Planner planner(&technology);
  for (auto _ : state) {
    auto result = planner.logic_synthesis({8, 667.0, {}, {}});
    benchmark::DoNotOptimize(result.power.total_w());
  }
}
BENCHMARK(BM_EnergyModelEvaluation);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Extension: energy efficiency (the paper's motivating metric).\n\n");
  print_energy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
