// Regenerates Table III: benchmark input sizes and measured cycle counts
// on the RISC-V baseline and on 1/2/4/8-CU G-GPUs.
//
// GPUP_BENCH_SCALE=N divides the input sizes by N for quick smoke runs
// (default 1 = paper sizes).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "src/repro/repro.hpp"

namespace {

std::uint32_t bench_scale() {
  const char* env = std::getenv("GPUP_BENCH_SCALE");
  const int value = (env != nullptr) ? std::atoi(env) : 1;
  return value >= 1 ? static_cast<std::uint32_t>(value) : 1u;
}

void print_table3() {
  const auto rows = gpup::repro::run_cycle_matrix(bench_scale());
  std::printf("=== Table III: input sizes and cycle counts (this repo, k-cycles) ===\n%s\n",
              gpup::repro::format_table3(rows).to_console().c_str());

  std::printf("=== Table III (paper, k-cycles) ===\n");
  std::printf("| Kernel        | RISC-V | 1CU  | 2CU  | 4CU  | 8CU  |\n");
  for (const auto& row : gpup::repro::paper_table3()) {
    std::printf("| %-13s | %-6.0f | %-4.0f | %-4.0f | %-4.0f | %-4.0f |\n", row.name,
                row.riscv_kcycles, row.gpu_kcycles[0], row.gpu_kcycles[1], row.gpu_kcycles[2],
                row.gpu_kcycles[3]);
  }
  std::printf("\n");
}

void BM_SimulatorThroughputCopy(benchmark::State& state) {
  const auto* copy = gpup::kern::benchmark_by_name("copy");
  gpup::sim::GpuConfig config;
  config.cu_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto run = gpup::kern::run_gpu(*copy, config, 4096);
    benchmark::DoNotOptimize(run.stats.cycles);
    state.counters["sim_cycles"] = static_cast<double>(run.stats.cycles);
  }
}
BENCHMARK(BM_SimulatorThroughputCopy)->Arg(1)->Arg(8);

void BM_RiscvCoreThroughput(benchmark::State& state) {
  const auto* copy = gpup::kern::benchmark_by_name("copy");
  for (auto _ : state) {
    auto run = gpup::kern::run_riscv(*copy, 512, /*optimized=*/false);
    benchmark::DoNotOptimize(run.stats.cycles);
  }
}
BENCHMARK(BM_RiscvCoreThroughput);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
