// Ablation: the paper's future-work fix for the 8-CU timing wall —
// "replicating the general memory controller, shortening the distance
// between the peripheral CUs and reducing the delay introduced by the
// routing wires".
//
// We emulate replication by halving the effective CU->controller route
// (each CU talks to the nearer of two controller copies) and re-running
// the wire-annotated timing: the 8-CU design then closes at 667 MHz, at
// the cost of a second controller's area.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "src/plan/planner.hpp"

namespace {

const gpup::tech::Technology& technology() {
  static const auto tech = gpup::tech::Technology::generic65();
  return tech;
}

void print_ablation() {
  const gpup::plan::Planner planner(&technology());

  const gpup::plan::Spec single{8, 667.0, {}, {}, /*replicate_memctrl=*/false};
  const auto logic1 = planner.logic_synthesis(single);
  const auto phys1 = planner.physical_synthesis(logic1);
  std::printf("single controller : achieved %.0f MHz (target 667), worst CU route %.2f mm, "
              "%.2f mm^2\n",
              phys1.achieved_mhz,
              *std::max_element(phys1.floorplan.cu_distance_mm.begin(),
                                phys1.floorplan.cu_distance_mm.end()),
              logic1.stats.total_area_mm2());

  gpup::plan::Spec dual = single;
  dual.replicate_memctrl = true;
  const auto logic2 = planner.logic_synthesis(dual);
  const auto phys2 = planner.physical_synthesis(logic2);
  std::printf("dual controller   : achieved %.0f MHz, worst CU route %.2f mm, %.2f mm^2 "
              "(+%.2f mm^2, +%.2f W)\n",
              phys2.achieved_mhz,
              *std::max_element(phys2.floorplan.cu_distance_mm.begin(),
                                phys2.floorplan.cu_distance_mm.end()),
              logic2.stats.total_area_mm2(),
              logic2.stats.total_area_mm2() - logic1.stats.total_area_mm2(),
              logic2.power.total_w() - logic1.power.total_w());
  std::printf("=> replication closes 667 MHz for 8 CUs: %s\n\n",
              phys2.meets_target ? "YES" : "no");
}

void BM_WireAnnotatedSta(benchmark::State& state) {
  const gpup::plan::Planner planner(&technology());
  const auto logic = planner.logic_synthesis({8, 667.0, {}, {}});
  const auto physical = planner.physical_synthesis(logic);
  gpup::sta::WireAnnotations wires;
  wires.cu_to_memctrl_mm = physical.floorplan.cu_distance_mm;
  const gpup::sta::TimingAnalyzer analyzer(&technology());
  for (auto _ : state) {
    auto timing = analyzer.analyze(logic.netlist, &wires);
    benchmark::DoNotOptimize(timing.fmax_mhz());
  }
}
BENCHMARK(BM_WireAnnotatedSta);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: replicated memory controller (paper future work).\n\n");
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
