// Regenerates Fig. 6: speed-up over RISC-V derated by the G-GPU/RISC-V
// area ratio per CU configuration. Area ratios come from the planner's
// logic synthesis of the 667 MHz versions against the CV32E40P-class
// netlist — the paper reports 6.5 / 11.6 / 21.4 / 41.0.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "src/gen/ggpu_arch.hpp"
#include "src/plan/planner.hpp"
#include "src/repro/repro.hpp"

namespace {

std::uint32_t bench_scale() {
  const char* env = std::getenv("GPUP_BENCH_SCALE");
  const int value = (env != nullptr) ? std::atoi(env) : 1;
  return value >= 1 ? static_cast<std::uint32_t>(value) : 1u;
}

std::array<double, 4> area_ratios() {
  const auto technology = gpup::tech::Technology::generic65();
  const gpup::plan::Planner planner(&technology);
  const double riscv_area =
      gpup::gen::generate_riscv(technology).stats().total_area_mm2();
  std::array<double, 4> ratios{};
  for (std::size_t i = 0; i < gpup::repro::kCuConfigs.size(); ++i) {
    const auto version =
        planner.logic_synthesis({gpup::repro::kCuConfigs[i], 667.0, {}, {}});
    ratios[i] = version.stats.total_area_mm2() / riscv_area;
  }
  return ratios;
}

void print_fig6() {
  const auto ratios = area_ratios();
  std::printf("[fig6] area ratios vs RISC-V: %.1f / %.1f / %.1f / %.1f "
              "(paper 6.5 / 11.6 / 21.4 / 41.0)\n\n",
              ratios[0], ratios[1], ratios[2], ratios[3]);

  const auto rows = gpup::repro::run_cycle_matrix(bench_scale());
  std::printf("=== Fig. 6: speed-up derated by area (this repo) ===\n%s\n",
              gpup::repro::format_fig6(rows, ratios).to_console().c_str());

  std::printf("=== Fig. 6 (derived from the paper) ===\n");
  std::printf("| Kernel        | 1CU  | 2CU  | 4CU  | 8CU  |\n");
  const std::array<double, 4> paper_ratios = {6.5, 11.6, 21.4, 41.0};
  for (const auto& paper : gpup::repro::paper_table3()) {
    const auto* benchmark = gpup::kern::benchmark_by_name(paper.name);
    const double input_ratio =
        static_cast<double>(benchmark->gpu_input()) / benchmark->riscv_input();
    std::printf("| %-13s | %-4.2f | %-4.2f | %-4.2f | %-4.2f |\n", paper.name,
                paper.riscv_kcycles * input_ratio / paper.gpu_kcycles[0] / paper_ratios[0],
                paper.riscv_kcycles * input_ratio / paper.gpu_kcycles[1] / paper_ratios[1],
                paper.riscv_kcycles * input_ratio / paper.gpu_kcycles[2] / paper_ratios[2],
                paper.riscv_kcycles * input_ratio / paper.gpu_kcycles[3] / paper_ratios[3]);
  }
  std::printf("\nPaper headline: 1 CU gives the best performance-per-area (~10.2x on "
              "mat_mul); 8 CUs the worst (~5.7x).\n\n");
}

void BM_AreaRatioComputation(benchmark::State& state) {
  for (auto _ : state) {
    auto ratios = area_ratios();
    benchmark::DoNotOptimize(ratios[0]);
  }
}
BENCHMARK(BM_AreaRatioComputation);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
