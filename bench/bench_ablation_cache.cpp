// Ablation: shared-cache contention vs CU count.
//
// The paper's Table III shows xcorr getting *slower* from 4 to 8 CUs
// (1467k -> 2079k cycles) and parallel_sel saturating — "data dependency
// and global memory communication limit parallelism". This bench sweeps
// the shared-cache geometry (capacity, banks, miss-handling registers) to
// map where that inversion lives: once eight CUs' working sets thrash the
// direct-mapped cache AND the outstanding-miss window is too small to hide
// the DRAM latency, adding CUs makes xcorr slower.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/kern/benchmark.hpp"

namespace {

struct Geometry {
  std::uint32_t kb;
  std::uint32_t banks;
  std::uint32_t mshr;
  std::uint32_t dram_latency;
};

std::uint64_t run_cycles(const char* kernel, int cu, const Geometry& g,
                         double* hit_rate = nullptr) {
  const auto* benchmark = gpup::kern::benchmark_by_name(kernel);
  gpup::sim::GpuConfig config;
  config.cu_count = cu;
  config.cache_bytes = g.kb * 1024;
  config.cache_banks = g.banks;
  config.mshr_per_bank = g.mshr;
  config.dram_latency = g.dram_latency;
  const auto run = gpup::kern::run_gpu(*benchmark, config, benchmark->gpu_input());
  GPUP_CHECK(run.valid);
  if (hit_rate != nullptr) *hit_rate = run.stats.counters.cache_hit_rate();
  return run.stats.cycles;
}

void sweep(const char* kernel) {
  std::printf("=== %s: 4CU vs 8CU cycles (k) across cache geometries ===\n", kernel);
  std::printf("| cache | banks | MSHR | DRAM lat | 4CU     | 8CU     | 4->8 gain | 8CU hit |\n");
  const Geometry geometries[] = {
      {8, 2, 8, 80},    // latency-exposed: the paper-like inversion region
      {8, 2, 16, 60},   // repo default: thrash visible, latency partly hidden
      {8, 4, 16, 60},
      {16, 4, 16, 60},
      {64, 4, 16, 60},  // everything fits: clean scaling
  };
  for (const Geometry& g : geometries) {
    double hit8 = 0.0;
    const auto c4 = run_cycles(kernel, 4, g);
    const auto c8 = run_cycles(kernel, 8, g, &hit8);
    std::printf("| %3u KB| %-5u | %-4u | %-8u | %-7.1f | %-7.1f | %-9.2f | %-7.2f |%s\n",
                g.kb, g.banks, g.mshr, g.dram_latency, c4 / 1000.0, c8 / 1000.0,
                static_cast<double>(c4) / c8, hit8,
                c8 > c4 ? "  << INVERSION (paper's 8-CU xcorr)" : "");
  }
  std::printf("\n");
}

void BM_XcorrContention(benchmark::State& state) {
  const auto* xcorr = gpup::kern::benchmark_by_name("xcorr");
  gpup::sim::GpuConfig config;
  config.cu_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto run = gpup::kern::run_gpu(*xcorr, config, 1024);
    benchmark::DoNotOptimize(run.stats.cycles);
  }
}
BENCHMARK(BM_XcorrContention)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: shared-cache geometry vs CU scaling.\n\n");
  sweep("xcorr");
  sweep("parallel_sel");
  std::printf(
      "Reading: xcorr's 8-CU hit rate collapses once eight work-groups' windows\n"
      "exceed the direct-mapped capacity; whether that shows as inversion (paper)\n"
      "or weak scaling depends on how much DRAM latency the MSHRs still hide.\n"
      "parallel_sel is insensitive: its NDRange (4 work-groups of 512) can only\n"
      "feed 4 CUs, which is the saturation the paper reports.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
