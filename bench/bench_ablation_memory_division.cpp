// Ablation: what each memory-division step buys and costs.
//
// The paper's core design-space observation: "two blocks of size M x N are
// larger and more power-hungry than a single block of size 2M x N", yet
// dividing the critical-path memory raises Fmax. This bench sweeps the
// division factor of the CU instruction store (cu.cram) and reports the
// Fmax / area / power trade-off, plus the same sweep for by-bits division
// (which buys almost no delay — the reason GPUPlanner divides by words).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/gen/ggpu_arch.hpp"
#include "src/opt/transforms.hpp"
#include "src/plan/planner.hpp"
#include "src/power/power.hpp"
#include "src/sta/timing.hpp"
#include "src/util/table.hpp"

namespace {

const gpup::tech::Technology& technology() {
  static const auto tech = gpup::tech::Technology::generic65();
  return tech;
}

void sweep(bool by_words) {
  gpup::util::Table table({"factor", "cram path (ns)", "chip fmax (MHz)",
                           "mem area (mm2)", "#mem", "leak (mW)", "dyn @500 (W)"});
  for (int factor : {1, 2, 4, 8, 16}) {
    auto design = gpup::gen::generate_ggpu(gpup::gen::GgpuArchSpec::baseline(1), technology());
    if (factor > 1) {
      auto divided = gpup::opt::divide_memory(design, "cu.cram", factor, by_words);
      if (!divided.ok()) {
        std::printf("[ablation] factor %d: %s\n", factor, divided.error().to_string().c_str());
        continue;
      }
    }
    const gpup::sta::TimingAnalyzer analyzer(&technology());
    const auto timing = analyzer.analyze(design);
    const auto* cram_path = design.find_path("cu.cram.read_path");
    const auto cram = analyzer.evaluate(design, *cram_path, 0.0);
    const auto stats = design.stats();
    const gpup::power::PowerAnalyzer power_analyzer;
    const auto power = power_analyzer.analyze(design, 500.0);
    table.add_row({std::to_string(factor), gpup::util::Table::num(cram.delay_ns, 3),
                   gpup::util::Table::num(timing.fmax_mhz(), 1),
                   gpup::util::Table::num(stats.memory_area_mm2(), 3),
                   gpup::util::Table::num(static_cast<std::uint64_t>(stats.memory_count)),
                   gpup::util::Table::num(power.leakage_mw, 2),
                   gpup::util::Table::num(power.dynamic_w, 2)});
  }
  std::printf("=== cu.cram division by %s (1 CU) ===\n%s\n", by_words ? "WORDS" : "BITS",
              table.to_console().c_str());
}

void BM_DivideMemoryTransform(benchmark::State& state) {
  for (auto _ : state) {
    auto design = gpup::gen::generate_ggpu(gpup::gen::GgpuArchSpec::baseline(8), technology());
    auto divided = gpup::opt::divide_memory(design, "cu.cram", 4, true);
    benchmark::DoNotOptimize(divided.ok());
  }
}
BENCHMARK(BM_DivideMemoryTransform);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: memory division — delay gain vs area/power cost.\n\n");
  sweep(/*by_words=*/true);
  sweep(/*by_words=*/false);
  std::printf("Observation: word division buys ~0.3 ns per step on 4096-word macros at the\n"
              "cost of area/leakage (periphery duplication) and a MUX level; bit division\n"
              "only re-concatenates data and barely moves the path — matching the paper's\n"
              "choice to divide the word count on the critical-path memories.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
