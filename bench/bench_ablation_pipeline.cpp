// Ablation: on-demand pipeline insertion.
//
// Two findings from the paper are reproduced:
//   1. pipelining fixes deep register-to-register paths (the 590 MHz
//      version pipelines the wavefront issue arbiter);
//   2. pipelining CANNOT fix the 8-CU layout's CU<->controller interface,
//      because it is a request/grant handshake — the transform refuses it
//      and the layout falls back to 600 MHz.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/gen/ggpu_arch.hpp"
#include "src/opt/transforms.hpp"
#include "src/plan/planner.hpp"
#include "src/sta/timing.hpp"

namespace {

const gpup::tech::Technology& technology() {
  static const auto tech = gpup::tech::Technology::generic65();
  return tech;
}

void sweep_arbiter() {
  std::printf("=== pipeline stages on cu.issue_arbiter (1 CU baseline) ===\n");
  std::printf("| stages | path (ns) | extra FFs |\n");
  for (int stages = 0; stages <= 4; ++stages) {
    auto design = gpup::gen::generate_ggpu(gpup::gen::GgpuArchSpec::baseline(1), technology());
    const auto before = design.stats().ff_count;
    if (stages > 0) {
      auto piped = gpup::opt::insert_pipeline(design, "cu.issue_arbiter", stages);
      GPUP_CHECK(piped.ok());
    }
    const gpup::sta::TimingAnalyzer analyzer(&technology());
    const auto path = analyzer.evaluate(design, *design.find_path("cu.issue_arbiter"), 0.0);
    std::printf("| %-6d | %-9.3f | %-9llu |\n", stages, path.delay_ns,
                static_cast<unsigned long long>(design.stats().ff_count - before));
  }
  std::printf("\n");
}

void handshake_refusal() {
  auto design = gpup::gen::generate_ggpu(gpup::gen::GgpuArchSpec::baseline(8), technology());
  auto piped = gpup::opt::insert_pipeline(design, "top.interface", 1);
  std::printf("=== pipelining the CU<->controller interface (the paper's failed fix) ===\n");
  std::printf("insert_pipeline(top.interface) -> %s\n",
              piped.ok() ? "ACCEPTED (unexpected!)" : piped.error().to_string().c_str());

  const gpup::plan::Planner planner(&technology());
  const auto physical = planner.physical_synthesis(planner.logic_synthesis({8, 667.0, {}, {}}));
  std::printf("8CU@667 physical synthesis: achieved %.0f MHz, recommended %.0f MHz\n",
              physical.achieved_mhz, physical.recommended_mhz);
  for (const auto& note : physical.notes) std::printf("  note: %s\n", note.c_str());
  std::printf("\n");
}

void BM_PipelineTransform(benchmark::State& state) {
  for (auto _ : state) {
    auto design = gpup::gen::generate_ggpu(gpup::gen::GgpuArchSpec::baseline(8), technology());
    auto piped = gpup::opt::insert_pipeline(design, "cu.issue_arbiter", 2);
    benchmark::DoNotOptimize(piped.ok());
  }
}
BENCHMARK(BM_PipelineTransform);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: on-demand pipeline insertion.\n\n");
  sweep_arbiter();
  handshake_refusal();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
