// Ablation: how much of Fig. 5's speed-up is the baseline's code quality?
//
// The paper grew kernel inputs "up until crashing RISC-V and its compiler",
// which strongly suggests an unoptimised OpenCL-port baseline. We measure
// both: the naive per-work-item dispatch port (used for the Fig. 5
// reproduction) and a hand-optimised native loop, and recompute the 8-CU
// speed-up against each.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "src/repro/repro.hpp"

namespace {

std::uint32_t bench_scale() {
  const char* env = std::getenv("GPUP_BENCH_SCALE");
  const int value = (env != nullptr) ? std::atoi(env) : 1;
  return value >= 1 ? static_cast<std::uint32_t>(value) : 1u;
}

void print_ablation() {
  const auto rows = gpup::repro::run_cycle_matrix(bench_scale());
  std::printf("| Kernel        | naive cyc/item | opt cyc/item | naive/opt | 8CU speedup "
              "(naive) | 8CU speedup (opt) |\n");
  for (const auto& row : rows) {
    const double naive_per_item =
        static_cast<double>(row.riscv_cycles) / row.riscv_input;
    const double opt_per_item =
        static_cast<double>(row.riscv_optimized_cycles) / row.riscv_input;
    std::printf("| %-13s | %-14.1f | %-12.1f | %-9.2f | %-19.1f | %-17.1f |\n",
                row.name.c_str(), naive_per_item, opt_per_item, naive_per_item / opt_per_item,
                row.speedup(3, /*optimized_baseline=*/false),
                row.speedup(3, /*optimized_baseline=*/true));
  }
  std::printf("\nConclusion: a factor of the published speed-up is baseline code quality —\n"
              "with an optimised CPU loop the G-GPU still wins on parallel kernels, but by\n"
              "a smaller factor, and loses ground on the serial ones. This mirrors the\n"
              "paper's framing that G-GPU targets highly parallel workloads.\n\n");
}

void BM_NaiveVsOptimizedCopy(benchmark::State& state) {
  const auto* copy = gpup::kern::benchmark_by_name("copy");
  const bool optimized = state.range(0) != 0;
  for (auto _ : state) {
    auto run = gpup::kern::run_riscv(*copy, 512, optimized);
    benchmark::DoNotOptimize(run.stats.cycles);
    state.counters["rv_cycles"] = static_cast<double>(run.stats.cycles);
  }
}
BENCHMARK(BM_NaiveVsOptimizedCopy)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: RISC-V baseline code quality (naive OpenCL port vs optimised).\n\n");
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
